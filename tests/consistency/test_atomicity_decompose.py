"""Interval decomposition of the atomicity checker.

The decomposed checker (``decompose=True``, the default) must agree
with the monolithic Wing & Gong search on every history, return
witnesses that are genuine linearizations, and stay fast on long,
mostly-sequential histories where the monolithic search is quadratic
(or worse) in history length.
"""

import random

import pytest

from repro.consistency.atomicity import _segments, check_atomicity
from repro.sim.events import OperationRecord


def make_history(n_ops, seed, burst=4, flip=False):
    """Bursts of concurrent ops separated by quiescent points."""
    rng = random.Random(seed)
    batches, step, value, op_id = [], 0, 0, 0
    while op_id < n_ops:
        width = rng.randint(1, burst)
        batch = []
        for i in range(width):
            if op_id >= n_ops:
                break
            kind = rng.choice(["read", "write"])
            invoke = step
            step += rng.randint(1, 3)
            if kind == "write":
                value = rng.randint(0, 7)
                batch.append(
                    OperationRecord(op_id, f"c{i}", "write", value, invoke)
                )
            else:
                batch.append(
                    OperationRecord(op_id, f"c{i}", "read", value, invoke)
                )
            op_id += 1
        for op in batch:
            op.response_step = step
            step += rng.randint(1, 3)
        step += 1
        batches.append(batch)
    flat = [op for batch in batches for op in batch]
    if flip:  # corrupt one read so the history stops being atomic
        reads = [op for op in flat if op.kind == "read"]
        if reads:
            reads[len(reads) // 2].value = 99
    return flat


def assert_valid_witness(ops, initial_value, witness):
    """The returned order is a real linearization of the history."""
    by_id = {op.op_id: op for op in ops}
    assert len(set(witness)) == len(witness)
    assert set(witness) <= set(by_id)
    # Every complete op must be linearized; incomplete writes may be
    # dropped and incomplete reads never appear.
    complete = {op.op_id for op in ops if op.is_complete}
    assert complete <= set(witness)
    value = initial_value
    for op_id in witness:
        op = by_id[op_id]
        if op.kind == "read":
            assert op.value == value, f"read {op_id} saw stale value"
        else:
            value = op.value
    for i, earlier_id in enumerate(witness):
        for later_id in witness[i + 1 :]:
            assert not by_id[later_id].precedes(by_id[earlier_id])


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_histories_agree_with_monolithic(self, seed):
        rng = random.Random(seed)
        history = make_history(
            rng.randint(2, 24), seed=seed, flip=(seed % 3 == 0)
        )
        decomposed = check_atomicity(history)
        monolithic = check_atomicity(history, decompose=False)
        assert decomposed.ok == monolithic.ok
        if decomposed.ok:
            assert_valid_witness(history, 0, decomposed.linearization)
            assert_valid_witness(history, 0, monolithic.linearization)

    def test_incomplete_write_cases_agree(self):
        """Linearize-or-drop for incomplete writes survives decomposition."""
        # write(1) complete, then an incomplete write(2), then a read.
        ops = [
            OperationRecord(0, "w", "write", 1, 0, 1),
            OperationRecord(1, "w2", "write", 2, 2, None),
            OperationRecord(2, "r", "read", 1, 3, 4),
        ]
        for observed, ok in ((1, True), (2, True), (3, False)):
            ops[2].value = observed
            assert check_atomicity(ops).ok is ok
            assert check_atomicity(ops, decompose=False).ok is ok

    def test_budget_exceeded_reason_preserved(self):
        history = make_history(40, seed=1)
        verdict = check_atomicity(history, max_states=3)
        assert not verdict.ok
        assert "budget" in verdict.reason
        assert check_atomicity(history).ok


class TestSegmentation:
    def test_quiescent_points_cut_segments(self):
        history = make_history(30, seed=2)
        segments = _segments(history)
        assert sum(len(s) for s in segments) == len(history)
        assert len(segments) > 1
        for earlier, later in zip(segments, segments[1:]):
            for a in earlier:
                for b in later:
                    assert a.precedes(b)

    def test_incomplete_ops_land_in_final_segment(self):
        ops = [
            OperationRecord(0, "w", "write", 1, 0, 1),
            OperationRecord(1, "w2", "write", 2, 2, None),  # never responds
            OperationRecord(2, "r", "read", 1, 50, 51),
        ]
        segments = _segments(ops)
        # The incomplete write extends to infinity: no cut after it.
        assert len(segments) == 2
        assert [op.op_id for op in segments[-1]] == [1, 2]


class TestScaling:
    def test_long_history_checks_in_near_linear_time(self):
        """4000 mostly-sequential ops: far beyond the monolithic search
        (which exceeds any reasonable state budget), but the decomposed
        checker handles it with a per-burst state count."""
        history = make_history(4000, seed=11)
        verdict = check_atomicity(history)
        assert verdict.ok
        assert_valid_witness(history, 0, verdict.linearization)
        assert verdict.states_explored < 20 * len(history)

    def test_long_violating_history_detected(self):
        history = make_history(2000, seed=12, flip=True)
        verdict = check_atomicity(history)
        assert not verdict.ok
        assert verdict.reason == "no legal linearization exists"
