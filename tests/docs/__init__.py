"""Docs-drift guard: the documentation must track the code."""
