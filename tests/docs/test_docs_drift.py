"""Keep the docs in lockstep with the code (``make docs-check``).

Three invariants, derived from the code so the test cannot itself
drift:

1. every CLI verb (from the real ``build_parser()``) is mentioned as
   ``repro <verb>`` somewhere in README.md or docs/;
2. every package under ``src/repro/`` is mentioned as ``repro.<pkg>``
   in the docs tree, and ``docs/README.md`` links every docs page;
3. every public module carries a docstring.

Removing a verb or package from the docs — or adding one to the code
without documenting it — fails this suite.
"""

import ast
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent.parent
DOCS = REPO / "docs"
SRC = REPO / "src" / "repro"


def _docs_corpus() -> str:
    parts = [(REPO / "README.md").read_text(encoding="utf-8")]
    for page in sorted(DOCS.glob("*.md")):
        parts.append(page.read_text(encoding="utf-8"))
    return "\n".join(parts)


def _cli_verbs():
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return sorted(action.choices)
    raise AssertionError("CLI has no subcommands")


def _packages():
    return sorted(
        p.name for p in SRC.iterdir() if p.is_dir() and (p / "__init__.py").exists()
    )


@pytest.mark.parametrize("verb", _cli_verbs())
def test_every_cli_verb_documented(verb):
    assert f"repro {verb}" in _docs_corpus(), (
        f"CLI verb '{verb}' exists in build_parser() but 'repro {verb}' "
        f"appears nowhere in README.md or docs/ — document it "
        f"(docs/README.md pairs every verb with a page)"
    )


@pytest.mark.parametrize("package", _packages())
def test_every_package_documented(package):
    assert f"repro.{package}" in _docs_corpus(), (
        f"package 'repro.{package}' exists under src/repro/ but is never "
        f"mentioned in README.md or docs/ — add it to the package index "
        f"in docs/README.md"
    )


def test_docs_index_links_every_page():
    index = (DOCS / "README.md").read_text(encoding="utf-8")
    for page in sorted(DOCS.glob("*.md")):
        if page.name == "README.md":
            continue
        assert f"({page.name})" in index, (
            f"docs/{page.name} exists but docs/README.md does not link it"
        )


def _modules():
    return sorted(
        path.relative_to(REPO).as_posix() for path in SRC.rglob("*.py")
    )


@pytest.mark.parametrize("relpath", _modules())
def test_every_module_has_docstring(relpath):
    tree = ast.parse((REPO / relpath).read_text(encoding="utf-8"))
    if relpath.endswith("__main__.py"):
        return  # entry-point shims may be bare
    assert ast.get_docstring(tree), f"{relpath} has no module docstring"
