"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["figure1"],
            ["bounds", "--nu", "3"],
            ["crossover", "--n", "9", "--f", "4"],
            ["classify", "--g", "2.0"],
            ["verify", "--theorem", "b1"],
            ["assumptions"],
            ["demo"],
            ["metrics", "--algorithm", "cas", "-n", "5", "-f", "1"],
            ["metrics", "--algorithm", "abd", "--json", "out.json"],
            ["metrics", "--algorithm", "cas", "--runs", "4", "--jobs", "2"],
            ["profile", "--algorithm", "abd", "--ops", "6"],
            ["chaos", "--json", "out.json"],
            ["chaos", "--jobs", "4", "--no-cache"],
            ["chaos", "--cache-dir", "/tmp/somewhere"],
            ["sweep"],
            ["sweep", "--jobs", "2", "--no-cache", "--out", "s.txt"],
            ["chaos", "--analyze"],
            ["chaos", "--analytics", "a.json"],
            ["trace", "capture", "--algorithm", "cas", "--shape", "drops"],
            ["trace", "capture", "--seeds", "3", "--chrome", "--jobs", "2"],
            ["trace", "export", "t.json", "--format", "chrome"],
            ["trace", "slice", "t.json", "--around", "100", "--radius", "20"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1", "--nu-max", "4"]) == 0
        out = capsys.readouterr().out
        assert "ThmB.1" in out
        assert "1.909" in out

    def test_figure1_plot(self, capsys):
        assert main(["figure1", "--nu-max", "4", "--plot"]) == 0
        assert "theorem51" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "21", "--f", "10", "--nu", "5"]) == 0
        out = capsys.readouterr().out
        assert "best lower bound: 7.0000" in out

    def test_crossover(self, capsys):
        assert main(["crossover", "--n", "21", "--f", "10"]) == 0
        assert "nu = 6" in capsys.readouterr().out

    def test_classify_possible(self, capsys):
        assert main(["classify", "--g", "11", "--nu", "12"]) == 0

    def test_classify_impossible_exit_code(self, capsys):
        assert main(["classify", "--g", "1.0", "--nu", "1"]) == 1

    def test_verify_b1(self, capsys):
        code = main([
            "verify", "--theorem", "b1", "--algorithm", "swmr-abd",
            "--n", "5", "--f", "2", "--value-bits", "2",
        ])
        assert code == 0
        assert "yes" in capsys.readouterr().out

    def test_verify_41(self, capsys):
        code = main([
            "verify", "--theorem", "41", "--algorithm", "swmr-abd",
            "--n", "5", "--f", "2", "--value-bits", "2",
        ])
        assert code == 0

    def test_verify_65(self, capsys):
        code = main([
            "verify", "--theorem", "65", "--algorithm", "cas",
            "--n", "5", "--f", "1", "--nu", "2", "--value-bits", "2",
        ])
        assert code == 0

    def test_verify_65_unsupported_algorithm(self, capsys):
        code = main([
            "verify", "--theorem", "65", "--algorithm", "coded-swmr",
            "--n", "5", "--f", "1",
        ])
        assert code == 2

    def test_assumptions(self, capsys):
        assert main(["assumptions", "--algorithm", "cas"]) == 0
        assert "pre" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_demo_every_algorithm(self, capsys, algorithm):
        assert main(["demo", "--algorithm", algorithm]) == 0
        assert "read() -> 3" in capsys.readouterr().out


class TestNewCommands:
    def test_explore(self, capsys):
        assert main(["explore", "--max-states", "50000"]) == 0
        out = capsys.readouterr().out
        assert "exhausted=True" in out
        assert "atomic in every explored execution" in out

    def test_explore_budget(self, capsys):
        assert main(["explore", "--max-states", "50"]) == 0
        assert "exhausted=False" in capsys.readouterr().out

    def test_communication(self, capsys):
        assert main(["communication", "--algorithms", "abd"]) == 0
        out = capsys.readouterr().out
        assert "write" in out and "read" in out


class TestObservabilityCommands:
    def test_metrics_smoke(self, capsys):
        assert main([
            "metrics", "--algorithm", "cas", "-n", "5", "-f", "1", "--ops", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics report" in out
        assert "sim.messages_sent" in out
        assert "op/write" in out
        assert "theorem_b1" in out
        assert "satisfied" in out
        assert "VIOLATED" not in out

    @pytest.mark.tier2
    def test_metrics_json_is_byte_identical_across_runs(self, capsys, tmp_path):
        import json

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([
                "metrics", "--algorithm", "cas", "-n", "5", "-f", "1",
                "--ops", "8", "--seed", "3", "--json", str(path),
            ]) == 0
            capsys.readouterr()
        first, second = (p.read_bytes() for p in paths)
        assert first == second

        doc = json.loads(first)
        assert doc["schema"] == "repro.metrics/1"
        assert doc["counters"]["sim.messages_sent"] > 0
        assert doc["spans"]["stats"]["op/write"]["count"] > 0
        series = doc["series"]["storage.total_bits"]
        b1_total = next(
            row for row in doc["bounds"]
            if row["theorem"] == "theorem_b1" and row["scope"] == "total"
        )
        assert max(series["values"]) >= b1_total["bound_bits"]

    def test_metrics_jsonl(self, capsys, tmp_path):
        path = tmp_path / "series.jsonl"
        assert main([
            "metrics", "--algorithm", "abd", "-n", "5", "-f", "2",
            "--ops", "6", "--jsonl", str(path),
        ]) == 0
        assert "JSONL written" in capsys.readouterr().out
        assert path.read_text().count("\n") > 0

    def test_profile_smoke(self, capsys):
        assert main([
            "profile", "--algorithm", "abd", "-n", "5", "-f", "2", "--ops", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "steps/s" in out
        assert "wall_ms" in out
        assert "WARNING" not in out

    def test_chaos_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "chaos.json"
        assert main([
            "chaos", "--algorithms", "abd", "-n", "5", "-f", "1",
            "--seeds", "1", "--ops", "4", "--out", "", "--json", str(path),
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        assert f"JSON summary written to {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.chaos/1"
        assert doc["passed"] is True
        assert doc["summary"]["runs"] == len(doc["runs"])
        assert all(run["algorithm"] == "abd" for run in doc["runs"])

    def test_chaos_cache_stats_on_stdout_not_in_report(self, capsys, tmp_path):
        report = tmp_path / "chaos.txt"
        argv = [
            "chaos", "--algorithms", "abd", "-n", "5", "-f", "1",
            "--seeds", "1", "--ops", "3", "--out", str(report),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first_out = capsys.readouterr().out
        assert "cache:" in first_out
        first_report = report.read_bytes()
        assert b"cache:" not in first_report

        # Warm rerun: all hits, byte-identical report file.
        assert main(argv) == 0
        assert "0 miss(es)" in capsys.readouterr().out
        assert report.read_bytes() == first_report

    def test_chaos_no_cache(self, capsys, tmp_path):
        assert main([
            "chaos", "--algorithms", "abd", "-n", "5", "-f", "1",
            "--seeds", "1", "--ops", "3", "--out", "",
            "--no-cache",
        ]) == 0
        assert "cache:" not in capsys.readouterr().out


class TestTraceCommands:
    def test_capture_export_slice_round_trip(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        assert main([
            "trace", "capture", "--algorithm", "abd", "-n", "5", "-f", "1",
            "--shape", "clean", "--ops", "4", "--max-ticks", "4000",
            "--out", str(trace), "--chrome",
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert "verdict live" in out

        doc = json.loads(trace.read_text())
        assert doc["schema"] == "repro.trace/1"
        assert doc["events"] and doc["spans"]

        # export --format chrome reproduces the capture-time sidecar.
        chrome_sidecar = tmp_path / "trace.chrome.json"
        exported = tmp_path / "exported.json"
        assert main([
            "trace", "export", str(trace), "--out", str(exported),
        ]) == 0
        capsys.readouterr()
        assert exported.read_bytes() == chrome_sidecar.read_bytes()

        # A slice is itself a valid trace document.
        around = doc["events"][len(doc["events"]) // 2]["step"]
        sliced = tmp_path / "slice.json"
        assert main([
            "trace", "slice", str(trace), "--around", str(around),
            "--radius", "10", "--out", str(sliced),
        ]) == 0
        capsys.readouterr()
        piece = json.loads(sliced.read_text())
        assert piece["schema"] == "repro.trace/1"
        assert piece["meta"]["slice"] == {"around": around, "radius": 10}
        assert len(piece["events"]) <= len(doc["events"])

    def test_capture_rejects_unknown_shape(self, capsys):
        assert main([
            "trace", "capture", "--shape", "nonsense",
        ]) == 3
        assert "unknown fault shape" in capsys.readouterr().out

    def test_chaos_analyze(self, capsys, tmp_path):
        import json

        path = tmp_path / "analytics.json"
        assert main([
            "chaos", "--algorithms", "abd", "-n", "5", "-f", "1",
            "--seeds", "1", "--ops", "4", "--out", "",
            "--cache-dir", str(tmp_path / "cache"),
            "--analyze", "--analytics", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign analytics" in out
        assert f"analytics written to {path}" in out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.analytics/1"
        assert doc["telemetry_runs"] == doc["runs"] > 0
        assert "abd" in doc["algorithms"]


class TestParallelCommands:
    def test_metrics_runs_batch(self, capsys):
        assert main([
            "metrics", "--algorithm", "cas", "-n", "5", "-f", "1",
            "--ops", "4", "--runs", "3", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics batch" in out
        assert "per-run summary" in out
        assert "merged counters" in out
        assert "VIOLATED" not in out

    def test_metrics_batch_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "batch.json"
        assert main([
            "metrics", "--algorithm", "cas", "-n", "5", "-f", "1",
            "--ops", "4", "--runs", "2", "--json", str(path),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.metrics-batch/1"
        assert len(doc["runs"]) == 2
        assert doc["merged"]["counters"]["sim.messages_sent"] > 0

    def test_sweep(self, capsys, tmp_path):
        out_file = tmp_path / "sweeps.txt"
        assert main([
            "sweep", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "Improvement over the Singleton-style bound" in out
        assert "cache:" in out
        text = out_file.read_text()
        assert "Finite-|V| convergence" in text
        assert "cache:" not in text

    def test_sweep_no_cache(self, capsys):
        assert main(["sweep", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "f proportional to N" in out
        assert "cache:" not in out
