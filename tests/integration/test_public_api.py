"""The public API surface: everything advertised must be importable."""

import importlib

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_import(self):
        for module in (
            "repro.core",
            "repro.coding",
            "repro.consistency",
            "repro.registers",
            "repro.sim",
            "repro.lowerbound",
            "repro.storage",
            "repro.workload",
            "repro.analysis",
            "repro.verification",
            "repro.cli",
        ):
            importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.core",
            "repro.coding",
            "repro.consistency",
            "repro.registers",
            "repro.sim",
            "repro.lowerbound",
            "repro.storage",
            "repro.workload",
            "repro.analysis",
            "repro.verification",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_every_public_symbol_documented(self):
        """Docstring discipline: every exported callable/class has one."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_error_hierarchy(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError and obj.__module__ == "repro.errors":
                    assert issubclass(obj, errors.ReproError), name
