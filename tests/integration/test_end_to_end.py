"""Cross-module integration tests: the library's headline claims."""

import pytest

from repro import (
    build_abd_system,
    build_cas_system,
    build_casgc_system,
    build_swmr_abd_system,
    check_atomicity,
    check_regular,
    evaluate_bounds,
    run_theorem41_experiment,
    run_theorem_b1_experiment,
)
from repro.storage.costs import peak_storage_during
from repro.workload.patterns import concurrent_writes_driver
from tests.conftest import ALL_BUILDERS


class TestPublicAPI:
    def test_quickstart_from_docstring(self):
        system = build_abd_system(n=5, f=2, value_bits=8)
        system.write(42)
        assert system.read().value == 42
        assert check_atomicity(system.world.operations).ok

    def test_all_builders_basic_cycle(self):
        configs = {
            "abd": (5, 2),
            "swmr-abd": (5, 2),
            "swmr-abd-atomic": (5, 2),
            "cas": (5, 1),
            "casgc": (5, 1),
        }
        for name, builder in ALL_BUILDERS.items():
            n, f = configs[name]
            handle = builder(n, f, 8)
            handle.write(33)
            assert handle.read().value == 33, name


class TestEveryAlgorithmRespectsEveryBound:
    """The universality claim: all our algorithms obey all lower bounds.

    The bounds constrain log2 of the number of *reachable* server
    states; our measured per-point storage (value-derived bits held) is
    an upper... proxy for that.  Concretely: normalized total measured
    storage at any point must be at least the best applicable lower
    bound whenever the algorithm's liveness matches the bound's class.
    """

    def test_abd_exceeds_universal_bounds(self):
        n, f = 5, 2
        handle = build_abd_system(n=n, f=f, value_bits=8)
        handle.write(1)
        bounds = evaluate_bounds(n, f, 1)
        measured = handle.normalized_total_storage()
        assert measured >= bounds.singleton - 1e-9
        assert measured >= bounds.theorem51 - 1e-9
        assert measured >= bounds.theorem41 - 1e-9

    def test_cas_steady_state_exceeds_singleton(self):
        n, f = 5, 1
        handle = build_cas_system(n=n, f=f, value_bits=12)
        handle.write(1)
        bounds = evaluate_bounds(n, f, 1)
        assert handle.normalized_total_storage() >= bounds.singleton - 1e-9

    def test_casgc_peak_respects_theorem65(self):
        """CASGC lives in Theorem 6.5's class; its peak under nu writes
        must dominate the nu-dependent bound."""
        n, f = 5, 1
        for nu in (1, 2):
            handle = build_casgc_system(
                n=n, f=f, value_bits=12, gc_depth=nu, num_writers=max(1, nu)
            )
            peak = peak_storage_during(
                handle, concurrent_writes_driver(list(range(1, nu + 1)))
            )
            bounds = evaluate_bounds(n, f, nu)
            assert peak.normalized_total(12) >= bounds.theorem65 - 1e-9


class TestExecutableProofsAcrossAlgorithms:
    @pytest.mark.parametrize("name", ["swmr-abd", "abd", "swmr-abd-atomic"])
    def test_theorem_b1_holds(self, name):
        cert = run_theorem_b1_experiment(
            ALL_BUILDERS[name], n=5, f=2, value_bits=2, algorithm=name
        )
        assert cert.holds, name

    @pytest.mark.parametrize("name", ["swmr-abd", "abd"])
    def test_theorem41_holds(self, name):
        cert = run_theorem41_experiment(
            ALL_BUILDERS[name], n=5, f=2, value_bits=2, algorithm=name
        )
        assert cert.holds, name


class TestConsistencyMatrix:
    def test_regular_but_not_atomic_exists(self):
        """The SWSR no-write-back configuration is the separating case.

        We search seeds for a schedule exhibiting a new/old inversion:
        regular accepts it, atomicity rejects it.  (Its existence is
        why the paper's regular-register bounds apply to atomic
        algorithms but not vice versa.)
        """
        from repro.sim.network import World
        from repro.sim.scheduler import RandomScheduler

        found_inversion = False
        for seed in range(60):
            handle = build_swmr_abd_system(
                n=3,
                f=1,
                value_bits=4,
                num_readers=2,
                world=World(RandomScheduler(seed)),
            )
            handle.write(1)
            w = handle.world
            w.invoke_write(handle.writer_ids[0], 2)
            r1 = w.invoke_read(handle.reader_ids[0])
            w.run_until(lambda world: r1.is_complete)
            r2 = w.invoke_read(handle.reader_ids[1])
            w.run_until(lambda world: not world.pending_operations())
            assert check_regular(w.operations).ok, f"seed {seed}"
            if not check_atomicity(w.operations).ok:
                found_inversion = True
                assert (r1.value, r2.value) == (2, 1)
                break
        assert found_inversion, "no schedule exhibited a new/old inversion"
