"""Every example script must run clean — they are living documentation."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


class TestExamples:
    def test_at_least_five_examples_exist(self):
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs_clean(self, script):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, script)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == 0, (
            f"{script} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
        )
        assert proc.stdout.strip(), f"{script} produced no output"

    def test_quickstart_mentions_bounds(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert "lower bound" in proc.stdout
        assert "read()   -> 42" in proc.stdout

    def test_adversarial_execution_certifies(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "adversarial_execution.py")],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert "critical pair" in proc.stdout
        assert "both certificates hold" in proc.stdout
