"""Tests for the Theorem 6.5 protocol-assumption instrumentation."""

import pytest

from repro.errors import ProofConstructionError
from repro.lowerbound.assumptions import analyze_write_protocol
from repro.registers.abd import build_abd_system
from repro.registers.abd_swmr import build_swmr_abd_system
from repro.registers.cas import build_cas_system
from repro.registers.coded_swmr import build_coded_swmr_system


def abd(n, f, vb):
    return build_abd_system(n=n, f=f, value_bits=vb)


def swmr(n, f, vb):
    return build_swmr_abd_system(n=n, f=f, value_bits=vb)


def cas(n, f, vb):
    return build_cas_system(n=n, f=f, value_bits=vb)


def coded(n, f, vb):
    return build_coded_swmr_system(n=n, f=f, value_bits=vb)


class TestClassification:
    def test_abd_phases(self):
        """The paper: in ABD all actions are black-box; query is
        value-independent, put carries the value."""
        report = analyze_write_protocol(abd, 5, 2, 8, "abd")
        assert report.black_box
        assert report.phase_kinds == ("get", "put")
        assert report.value_dependent_kinds == ("put",)
        assert "get" in report.value_independent_kinds
        assert report.value_dependent_phases == 1
        assert report.satisfies_theorem65

    def test_swmr_single_phase(self):
        report = analyze_write_protocol(swmr, 5, 2, 8, "swmr-abd")
        assert report.phase_kinds == ("put",)
        assert report.value_dependent_phases == 1
        assert report.satisfies_theorem65

    def test_cas_three_phases_one_value_dependent(self):
        """The paper: CAS sends coded elements only in pre-write."""
        report = analyze_write_protocol(cas, 5, 1, 12, "cas")
        assert report.phase_kinds == ("qf", "pre", "fin")
        assert report.value_dependent_kinds == ("pre",)
        assert report.value_dependent_phases == 1
        assert report.satisfies_theorem65

    def test_coded_swmr(self):
        report = analyze_write_protocol(coded, 5, 1, 12, "coded-swmr")
        assert report.phase_kinds == ("cput",)
        assert report.satisfies_theorem65

    def test_row_rendering(self):
        row = analyze_write_protocol(abd, 5, 2, 8, "abd").as_row()
        assert row[0] == "abd"
        assert row[-1] == "yes"


class TestProbeValues:
    def test_custom_probe_values(self):
        report = analyze_write_protocol(
            abd, 5, 2, 8, "abd", probe_values=[3, 200, 77]
        )
        assert report.satisfies_theorem65

    def test_identical_probe_values_rejected(self):
        with pytest.raises(ProofConstructionError):
            analyze_write_protocol(abd, 5, 2, 8, probe_values=[5, 5])
