"""Tests for the alpha(v1, v2) execution construction."""

import pytest

from repro.errors import ProofConstructionError
from repro.lowerbound.executions import construct_two_write_execution
from tests.conftest import cas_builder, swmr_builder


class TestConstruction:
    def test_basic_structure(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        assert execution.v1 == 1 and execution.v2 == 2
        assert len(execution.failed_server_ids) == 2
        assert len(execution.surviving_server_ids) == 3
        assert execution.num_points >= 2

    def test_default_failed_are_last_f(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        assert execution.failed_server_ids == ["s003", "s004"]

    def test_custom_failed_subset(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2,
            failed_indices=[0, 2],
        )
        assert execution.failed_server_ids == ["s000", "s002"]
        assert execution.surviving_server_ids == ["s001", "s003", "s004"]

    def test_equal_values_rejected(self):
        with pytest.raises(ProofConstructionError):
            construct_two_write_execution(
                swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=1
            )

    def test_both_writes_complete(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        writes = [
            op for op in execution.handle.world.operations if op.kind == "write"
        ]
        assert len(writes) == 2
        assert all(op.is_complete for op in writes)
        assert writes[0].value == 1 and writes[1].value == 2

    def test_writes_are_sequential(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        w1, w2 = [
            op for op in execution.handle.world.operations if op.kind == "write"
        ]
        assert w1.response_step < w2.invoke_step

    def test_readers_take_no_actions(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        reader = execution.reader_pid
        for action in execution.handle.world.trace:
            assert action.src != reader
            assert action.dst != reader

    def test_snapshots_are_consecutive_points(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        steps = [w.step_count for w in execution.snapshots]
        # P_0 then the invoke, then one action per snapshot
        assert steps[1] == steps[0] + 1
        assert all(b == a + 1 for a, b in zip(steps[1:], steps[2:]))

    def test_snapshots_are_independent_forks(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        s0 = execution.snapshots[0]
        before = s0.step_count
        execution.snapshots[1].step()
        assert s0.step_count == before

    def test_works_for_cas(self):
        execution = construct_two_write_execution(
            cas_builder, n=5, f=1, value_bits=12, v1=7, v2=9
        )
        assert execution.num_points > 2
