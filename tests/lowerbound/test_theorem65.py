"""Tests for the Theorem 6.5 direct-delivery experiment."""

import pytest

from repro.errors import ProofConstructionError
from repro.lowerbound.theorem65 import run_theorem65_experiment
from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.registers.casgc import build_casgc_system


def cas_builder(n, f, vb, num_writers):
    return build_cas_system(n=n, f=f, value_bits=vb, num_writers=num_writers)


def casgc_builder(n, f, vb, num_writers):
    return build_casgc_system(
        n=n, f=f, value_bits=vb, num_writers=num_writers, gc_depth=2
    )


def abd_builder(n, f, vb, num_writers):
    return build_abd_system(n=n, f=f, value_bits=vb, num_writers=num_writers)


class TestCAS:
    def test_information_complete_and_holds(self):
        cert = run_theorem65_experiment(
            cas_builder, n=5, f=1, nu=2, value_bits=3, algorithm="cas"
        )
        assert cert.information_complete
        assert cert.holds
        assert cert.tuples_tested == 7 * 6  # ordered pairs of non-initial values

    def test_subset_width(self):
        cert = run_theorem65_experiment(
            cas_builder, n=5, f=1, nu=2, value_bits=3
        )
        assert len(cert.subset_servers) == 5 - 1 + 2 - 1

    def test_nu_three(self):
        cert = run_theorem65_experiment(
            cas_builder, n=7, f=2, nu=3, value_bits=2, algorithm="cas"
        )
        assert cert.information_complete
        assert cert.holds

    def test_casgc(self):
        cert = run_theorem65_experiment(
            casgc_builder, n=5, f=1, nu=2, value_bits=3, algorithm="casgc"
        )
        assert cert.information_complete
        assert cert.holds


class TestReplication:
    def test_abd_collapses_but_inequality_holds(self):
        """Replication overwrites old versions, so direct delivery
        cannot separate tuples — yet the state-count inequality still
        holds (each server's state space carries a full value)."""
        cert = run_theorem65_experiment(
            abd_builder, n=5, f=2, nu=2, value_bits=3, algorithm="abd"
        )
        assert not cert.information_complete
        assert cert.holds


class TestValidation:
    def test_nu_too_large(self):
        with pytest.raises(ProofConstructionError):
            run_theorem65_experiment(cas_builder, n=5, f=1, nu=3, value_bits=3)

    def test_value_space_too_small(self):
        with pytest.raises(ProofConstructionError):
            run_theorem65_experiment(cas_builder, n=5, f=1, nu=2, value_bits=1)

    def test_row_rendering(self):
        cert = run_theorem65_experiment(
            cas_builder, n=5, f=1, nu=2, value_bits=3, algorithm="cas"
        )
        row = cert.as_row()
        assert row[0] == "cas"
        assert row[-1] == "yes"
