"""Tests for (j, C0)-valency witness probing.

The headline test demonstrates the phenomenon that forces Section 6's
existential valency definition: from the *same* point, different
delivery choices make *different* values readable — so no single fair
extension classifies the point, but the witness enumeration does.
"""

from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.lowerbound.valency65 import (
    is_j_c0_valent,
    probe_with_release,
    witness_values,
)
from repro.sim.scheduler import ChannelFilter


def abd_p0(values=(1, 2)):
    """The Theorem 6.5 point P_0 for ABD: nu writes queried, their
    value-dependent puts held in the channels."""
    handle = build_abd_system(
        n=3, f=1, value_bits=2, num_writers=len(values)
    )
    w = handle.world
    for value, writer in zip(values, handle.writer_ids):
        w.invoke_write(writer, value)
    w.deliver_all(ChannelFilter.block_message_kinds(["put"]))
    return handle


def cas_p0(values=(1, 2)):
    handle = build_cas_system(
        n=5, f=1, value_bits=4, num_writers=len(values)
    )
    w = handle.world
    for value, writer in zip(values, handle.writer_ids):
        w.invoke_write(writer, value)
    w.deliver_all(ChannelFilter.block_message_kinds(["pre"]))
    return handle


class TestWitnessEnumeration:
    def test_both_values_witnessed_at_p0(self):
        """At P_0 with all writers allowed, every written value (and
        the initial one) is witnessed by SOME extension — existential
        multiplicity a single probe cannot see."""
        handle = abd_p0()
        values = witness_values(
            handle.world,
            allowed_writers=handle.writer_ids,
            all_writers=handle.writer_ids,
            server_ids=handle.server_ids,
            vd_kinds=["put"],
            reader_pid=handle.reader_ids[0],
        )
        assert {0, 1, 2} <= values

    def test_frozen_writer_value_not_witnessed(self):
        """With C0 = {writer of v1} only, v2 is unreachable: the point
        is (1, {C1})-valent but not (2, {C1})-valent."""
        handle = abd_p0()
        w1 = handle.writer_ids[0]
        assert is_j_c0_valent(
            handle.world, 1, [w1], handle.writer_ids,
            handle.server_ids, ["put"], handle.reader_ids[0],
        )
        assert not is_j_c0_valent(
            handle.world, 2, [w1], handle.writer_ids,
            handle.server_ids, ["put"], handle.reader_ids[0],
        )

    def test_empty_allowed_set_reads_initial(self):
        handle = abd_p0()
        values = witness_values(
            handle.world, [], handle.writer_ids,
            handle.server_ids, ["put"], handle.reader_ids[0],
        )
        assert values == {0}

    def test_cas_witnesses(self):
        handle = cas_p0()
        values = witness_values(
            handle.world,
            allowed_writers=handle.writer_ids,
            all_writers=handle.writer_ids,
            server_ids=handle.server_ids,
            vd_kinds=["pre"],
            reader_pid=handle.reader_ids[0],
        )
        # the initial value is always readable; written values are not
        # readable at P_0 because their tags were never finalized (the
        # writers are stuck awaiting pre-acks) — CAS's finalized-tag
        # discipline hides un-finalized versions from readers.
        assert 0 in values


class TestProbeMechanics:
    def test_probe_does_not_mutate(self):
        from repro.sim.snapshot import world_digest

        handle = abd_p0()
        before = world_digest(handle.world)
        probe_with_release(
            handle.world, handle.writer_ids, handle.server_ids,
            handle.writer_ids, ["put"], handle.reader_ids[0],
        )
        assert world_digest(handle.world) == before

    def test_partial_prefix_release(self):
        """Releasing one writer's puts to a single server is already
        enough for ABD (max-tag wins at the read quorum)."""
        handle = abd_p0()
        w2 = handle.writer_ids[1]
        value = probe_with_release(
            handle.world, [w2], handle.server_ids[:1],
            handle.writer_ids, ["put"], handle.reader_ids[0],
        )
        assert value == 2
