"""Tests for the counting/injectivity step."""

from itertools import permutations

from repro.lowerbound.counting import (
    collect_state_vectors,
    colliding_pairs,
    injectivity_of,
    state_vector_for,
)
from repro.lowerbound.critical import find_critical_pair
from repro.lowerbound.executions import construct_two_write_execution
from tests.conftest import swmr_builder


def build_pairs(value_bits=2, n=5, f=2):
    pairs = {}
    surviving = None
    for v1, v2 in permutations(range(1 << value_bits), 2):
        execution = construct_two_write_execution(
            swmr_builder, n=n, f=f, value_bits=value_bits, v1=v1, v2=v2
        )
        surviving = execution.surviving_server_ids
        pairs[(v1, v2)] = find_critical_pair(execution)
    return pairs, surviving


class TestStateVectors:
    def test_vector_structure(self):
        pairs, surviving = build_pairs()
        vector = state_vector_for(pairs[(0, 1)], surviving)
        states_q1, changed_server, state_q2 = vector
        assert len(states_q1) == len(surviving)
        assert changed_server in surviving

    def test_injectivity_holds(self):
        """The heart of Theorem 4.1 against a real algorithm."""
        pairs, surviving = build_pairs()
        vectors = collect_state_vectors(pairs, surviving)
        cert = injectivity_of(vectors)
        assert cert.domain_size == 12  # |V| (|V|-1) with |V|=4
        assert cert.injective

    def test_implied_bits_match_count(self):
        pairs, surviving = build_pairs()
        vectors = collect_state_vectors(pairs, surviving)
        cert = injectivity_of(vectors)
        from repro.util.intmath import exact_log2

        assert abs(cert.implied_bits - exact_log2(12)) < 1e-12

    def test_no_collisions_reported(self):
        pairs, surviving = build_pairs()
        vectors = collect_state_vectors(pairs, surviving)
        assert colliding_pairs(vectors) == []

    def test_colliding_pairs_detects_duplicates(self):
        fake = {
            (0, 1): ((("a",),), "s0", ("x",)),
            (1, 0): ((("a",),), "s0", ("x",)),
            (0, 2): ((("b",),), "s0", ("x",)),
        }
        collisions = colliding_pairs(fake)
        assert collisions == [((0, 1), (1, 0))]
        assert not injectivity_of(fake).injective
