"""End-to-end tests for the Theorem 4.1 driver.

These are the flagship tests of the reproduction: the paper's full
Section 4.3 construction executed against real algorithms.
"""

import pytest

from repro.core.bounds import theorem41_subset_rhs_bits
from repro.lowerbound.theorem41 import run_theorem41_experiment
from tests.conftest import abd_builder, cas_builder, swmr_builder


class TestSWMRABD:
    def test_certificate_holds(self):
        cert = run_theorem41_experiment(
            swmr_builder, n=5, f=2, value_bits=2, algorithm="swmr-abd"
        )
        assert cert.injectivity.injective
        assert cert.critical_points_found == cert.pairs_tested == 12
        assert cert.holds

    def test_lhs_exceeds_rhs(self):
        cert = run_theorem41_experiment(swmr_builder, n=5, f=2, value_bits=2)
        assert cert.lhs_bits >= cert.rhs_bits

    def test_rhs_matches_formula(self):
        cert = run_theorem41_experiment(swmr_builder, n=5, f=2, value_bits=2)
        assert cert.rhs_bits == theorem41_subset_rhs_bits(5, 2, 4)

    def test_pairs_cover_ordered_pairs(self):
        cert = run_theorem41_experiment(swmr_builder, n=5, f=2, value_bits=2)
        assert cert.pairs_tested == 4 * 3

    def test_gossip_variant_certificate(self):
        """Theorem 5.1's definition on a gossip-free algorithm."""
        cert = run_theorem41_experiment(
            swmr_builder, n=5, f=2, value_bits=2, deliver_gossip_first=True
        )
        assert cert.holds


class TestOtherAlgorithms:
    def test_abd_mwmr(self):
        cert = run_theorem41_experiment(
            abd_builder, n=5, f=2, value_bits=2, algorithm="abd"
        )
        assert cert.holds

    def test_cas(self):
        cert = run_theorem41_experiment(
            cas_builder, n=5, f=1, value_bits=4, algorithm="cas",
        )
        # f=1 < 2: Theorem 4.1's statement needs f >= 2, so only check
        # the construction itself succeeded and was injective.
        assert cert.injectivity.injective
        assert cert.critical_points_found == cert.pairs_tested

    def test_cas_f2(self):
        cert = run_theorem41_experiment(
            cas_builder, n=7, f=2, value_bits=4, algorithm="cas",
        )
        assert cert.injectivity.injective
        assert cert.holds


class TestSubsetChoice:
    def test_alternative_failed_subset(self):
        cert = run_theorem41_experiment(
            swmr_builder, n=5, f=2, value_bits=2, failed_indices=[1, 3]
        )
        assert cert.surviving_servers == ("s000", "s002", "s004")
        assert cert.holds
