"""End-to-end tests for the Theorem B.1 driver."""

import pytest

from repro.lowerbound.theorem_b1 import run_theorem_b1_experiment
from tests.conftest import (
    abd_builder,
    cas_builder,
    casgc_builder,
    swmr_builder,
)


class TestSWMRABD:
    def test_certificate_holds(self):
        cert = run_theorem_b1_experiment(
            swmr_builder, n=5, f=2, value_bits=3, algorithm="swmr-abd"
        )
        assert cert.injectivity.injective
        assert cert.holds

    def test_observed_at_least_rhs(self):
        cert = run_theorem_b1_experiment(swmr_builder, n=5, f=2, value_bits=3)
        assert cert.observed_sum_bits >= cert.rhs_bits

    def test_rhs_is_log_v(self):
        cert = run_theorem_b1_experiment(swmr_builder, n=5, f=2, value_bits=3)
        assert cert.rhs_bits == 3.0

    def test_surviving_servers_recorded(self):
        cert = run_theorem_b1_experiment(swmr_builder, n=5, f=2, value_bits=2)
        assert cert.surviving_servers == ("s000", "s001", "s002")

    def test_custom_failed_subset(self):
        cert = run_theorem_b1_experiment(
            swmr_builder, n=5, f=2, value_bits=2, failed_indices=[0, 1]
        )
        assert cert.surviving_servers == ("s002", "s003", "s004")
        assert cert.holds


class TestOtherAlgorithms:
    def test_abd_mwmr(self):
        cert = run_theorem_b1_experiment(
            abd_builder, n=5, f=2, value_bits=3, algorithm="abd"
        )
        assert cert.holds

    def test_cas(self):
        """Erasure-coded storage also carries >= log|V| across survivors."""
        cert = run_theorem_b1_experiment(
            cas_builder, n=5, f=1, value_bits=4, algorithm="cas"
        )
        assert cert.injectivity.injective
        assert cert.holds

    def test_casgc(self):
        cert = run_theorem_b1_experiment(
            casgc_builder, n=5, f=1, value_bits=4, algorithm="casgc"
        )
        assert cert.holds

    def test_cas_per_server_below_full_value(self):
        """Erasure coding's point: each server holds less than log|V|."""
        cert = run_theorem_b1_experiment(
            cas_builder, n=5, f=1, value_bits=4, algorithm="cas"
        )
        # total >= log|V| but no single server needs the full value;
        # with k=3 symbols per value the per-server share is ~2 bits
        assert cert.observed_sum_bits >= 4.0


class TestRowRendering:
    def test_as_row(self):
        cert = run_theorem_b1_experiment(swmr_builder, n=5, f=2, value_bits=2)
        row = cert.as_row()
        assert row[0] == "unknown"
        assert row[-1] == "yes"
