"""Tests for valency probing."""

from repro.lowerbound.executions import construct_two_write_execution
from repro.lowerbound.valency import is_valent_for, probe_read_value
from repro.sim.snapshot import world_digest
from tests.conftest import cas_builder, swmr_builder


class TestProbe:
    def test_p0_reads_v1(self):
        """At P_0 (after pi1, before pi2) a frozen-writer read sees v1."""
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        value = probe_read_value(
            execution.snapshots[0], [execution.writer_pid], execution.reader_pid
        )
        assert value == 1

    def test_pm_reads_v2(self):
        """At P_M (after pi2) the read must see v2 (regularity)."""
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        value = probe_read_value(
            execution.snapshots[-1], [execution.writer_pid], execution.reader_pid
        )
        assert value == 2

    def test_probe_does_not_mutate_snapshot(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        snap = execution.snapshots[0]
        before = world_digest(snap)
        probe_read_value(snap, [execution.writer_pid], execution.reader_pid)
        assert world_digest(snap) == before

    def test_every_point_reads_v1_or_v2(self):
        """Lemma 4.5 empirically: probe always returns v1 or v2."""
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=3
        )
        for snap in execution.snapshots:
            value = probe_read_value(
                snap, [execution.writer_pid], execution.reader_pid
            )
            assert value in (1, 3)

    def test_is_valent_for(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        assert is_valent_for(
            execution.snapshots[0], 1, [execution.writer_pid], execution.reader_pid
        )
        assert not is_valent_for(
            execution.snapshots[0], 2, [execution.writer_pid], execution.reader_pid
        )

    def test_gossip_variant_on_gossip_free_algorithm(self):
        """For gossip-free protocols both valency definitions coincide."""
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        for snap in (execution.snapshots[0], execution.snapshots[-1]):
            plain = probe_read_value(
                snap, [execution.writer_pid], execution.reader_pid
            )
            gossip = probe_read_value(
                snap,
                [execution.writer_pid],
                execution.reader_pid,
                deliver_gossip_first=True,
            )
            assert plain == gossip

    def test_cas_endpoints(self):
        execution = construct_two_write_execution(
            cas_builder, n=5, f=1, value_bits=12, v1=100, v2=200
        )
        assert probe_read_value(
            execution.snapshots[0], [execution.writer_pid], execution.reader_pid
        ) == 100
        assert probe_read_value(
            execution.snapshots[-1], [execution.writer_pid], execution.reader_pid
        ) == 200
