"""Tests for critical-point search."""

import pytest

from repro.lowerbound.critical import find_critical_pair
from repro.lowerbound.executions import construct_two_write_execution
from repro.lowerbound.valency import probe_read_value
from tests.conftest import cas_builder, swmr_builder


class TestFindCriticalPair:
    def test_pair_exists(self):
        """Lemma 4.6 empirically: every alpha(v1,v2) has a flip."""
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        pair = find_critical_pair(execution)
        assert pair.value_at_q1 == 1
        assert pair.value_at_q2 == 2

    def test_pair_points_are_adjacent(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        pair = find_critical_pair(execution)
        assert pair.q2.step_count == pair.q1.step_count + 1

    def test_pair_matches_probe(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=0, v2=3
        )
        pair = find_critical_pair(execution)
        assert probe_read_value(
            pair.q1, [execution.writer_pid], execution.reader_pid
        ) == 0
        assert probe_read_value(
            pair.q2, [execution.writer_pid], execution.reader_pid
        ) == 3

    def test_at_most_one_server_changes(self):
        """Lemma 4.8(b) empirically."""
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        pair = find_critical_pair(execution)
        changed = [
            pid
            for pid in execution.surviving_server_ids
            if pair.q1.process(pid).state_digest()
            != pair.q2.process(pid).state_digest()
        ]
        assert len(changed) <= 1

    def test_works_for_cas(self):
        execution = construct_two_write_execution(
            cas_builder, n=5, f=1, value_bits=12, v1=11, v2=22
        )
        pair = find_critical_pair(execution)
        assert (pair.value_at_q1, pair.value_at_q2) == (11, 22)

    def test_gossip_variant(self):
        execution = construct_two_write_execution(
            swmr_builder, n=5, f=2, value_bits=2, v1=1, v2=2
        )
        pair = find_critical_pair(execution, deliver_gossip_first=True)
        assert pair.value_at_q1 == 1

    def test_all_value_pairs_have_critical_points(self):
        """Exhaustive over |V|=4: the construction never fails."""
        from itertools import permutations

        for v1, v2 in permutations(range(4), 2):
            execution = construct_two_write_execution(
                swmr_builder, n=5, f=2, value_bits=2, v1=v1, v2=v2
            )
            pair = find_critical_pair(execution)
            assert pair.value_at_q1 == v1
            assert pair.value_at_q2 == v2
