"""Tests for exact integer math helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import BoundError
from repro.util.intmath import (
    binomial,
    ceil_div,
    exact_log2,
    is_power_of_two,
    log2_binomial,
    log2_factorial,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_one(self):
        assert ceil_div(1, 5) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_negative_divisor_rejected(self):
        with pytest.raises(BoundError):
            ceil_div(10, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)


class TestIsPowerOfTwo:
    def test_powers(self):
        for e in range(20):
            assert is_power_of_two(1 << e)

    def test_non_powers(self):
        for n in (0, 3, 5, 6, 7, 9, 100, -4):
            assert not is_power_of_two(n)


class TestExactLog2:
    def test_small_values(self):
        assert exact_log2(1) == 0.0
        assert exact_log2(2) == 1.0
        assert exact_log2(1024) == 10.0

    def test_non_power(self):
        assert abs(exact_log2(10) - math.log2(10)) < 1e-12

    def test_huge_power_of_two(self):
        assert exact_log2(1 << 500) == 500.0

    def test_huge_non_power(self):
        n = (1 << 300) + (1 << 299)
        assert abs(exact_log2(n) - (300 + math.log2(1.5))) < 1e-9

    def test_rejects_nonpositive(self):
        with pytest.raises(BoundError):
            exact_log2(0)
        with pytest.raises(BoundError):
            exact_log2(-5)

    @given(st.integers(min_value=1, max_value=2**52))
    def test_matches_float_log2_in_exact_range(self, n):
        assert abs(exact_log2(n) - math.log2(n)) < 1e-12

    @given(st.integers(min_value=1, max_value=2**200))
    def test_monotone(self, n):
        assert exact_log2(n + 1) >= exact_log2(n)


class TestBinomial:
    def test_known_values(self):
        assert binomial(5, 2) == 10
        assert binomial(10, 0) == 1
        assert binomial(10, 10) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(5, 6) == 0
        assert binomial(5, -1) == 0
        assert binomial(-1, 0) == 0

    def test_log2_binomial(self):
        assert abs(log2_binomial(5, 2) - math.log2(10)) < 1e-12

    def test_log2_binomial_zero_rejected(self):
        with pytest.raises(BoundError):
            log2_binomial(3, 5)

    @given(st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=60))
    def test_pascal_identity(self, n, k):
        assert binomial(n + 1, k + 1) == binomial(n, k) + binomial(n, k + 1)


class TestLog2Factorial:
    def test_base_cases(self):
        assert log2_factorial(0) == 0.0
        assert log2_factorial(1) == 0.0

    def test_small(self):
        assert abs(log2_factorial(5) - math.log2(120)) < 1e-12

    def test_rejects_negative(self):
        with pytest.raises(BoundError):
            log2_factorial(-1)

    @given(st.integers(min_value=1, max_value=200))
    def test_recurrence(self, n):
        assert abs(
            log2_factorial(n) - (log2_factorial(n - 1) + exact_log2(n))
        ) < 1e-9
