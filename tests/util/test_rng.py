"""Tests for seeded RNG helpers."""

import copy

from repro.util.rng import SeededRNG, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        s = derive_seed(123, "label")
        assert 0 <= s < 2**64


class TestSeededRNG:
    def test_reproducible_sequence(self):
        a = SeededRNG(42)
        b = SeededRNG(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_label_forks_diverge(self):
        a = SeededRNG(42, "x")
        b = SeededRNG(42, "y")
        seq_a = [a.randint(0, 1000) for _ in range(10)]
        seq_b = [b.randint(0, 1000) for _ in range(10)]
        assert seq_a != seq_b

    def test_deepcopy_preserves_stream(self):
        a = SeededRNG(7)
        a.randint(0, 10)  # advance
        b = copy.deepcopy(a)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_choice_and_shuffle_deterministic(self):
        a = SeededRNG(5)
        b = SeededRNG(5)
        items = list(range(30))
        ia, ib = list(items), list(items)
        a.shuffle(ia)
        b.shuffle(ib)
        assert ia == ib
        assert a.choice(items) == b.choice(items)

    def test_sample(self):
        rng = SeededRNG(9)
        s = rng.sample(range(100), 10)
        assert len(s) == 10
        assert len(set(s)) == 10

    def test_fork_independent(self):
        root = SeededRNG(1)
        c1 = root.fork("child")
        c2 = root.fork("child")
        assert [c1.randint(0, 100) for _ in range(5)] == [
            c2.randint(0, 100) for _ in range(5)
        ]

    def test_random_in_unit_interval(self):
        rng = SeededRNG(3)
        for _ in range(100):
            x = rng.random()
            assert 0.0 <= x < 1.0
