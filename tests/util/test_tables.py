"""Tests for text-table rendering."""

from repro.util.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows same width
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in out
        assert "1.2345" not in out

    def test_strings_pass_through(self):
        out = format_table(["name"], [["hello"]])
        assert "hello" in out

    def test_header_separator(self):
        out = format_table(["col"], [[1]])
        assert "---" in out.splitlines()[1]

    def test_indent(self):
        out = format_table(["x"], [[1]], indent="  ")
        assert all(line.startswith("  ") for line in out.splitlines())

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    def test_mixed_types_in_column(self):
        out = format_table(["v"], [[1], [2.5], ["x"]])
        assert "2.5000" in out
