"""Tests for state-space accounting."""

from repro.registers.abd import build_abd_system
from repro.storage.accounting import StateSpaceAccountant


class TestAccountant:
    def test_observe_world(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        acc = StateSpaceAccountant()
        acc.observe_world(handle.world)
        handle.write(5)
        acc.observe_world(handle.world)
        report = acc.report()
        assert report.observations == 2
        assert all(count == 2 for count in report.per_server_states.values())

    def test_duplicate_states_not_double_counted(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        acc = StateSpaceAccountant()
        acc.observe_world(handle.world)
        acc.observe_world(handle.world)
        assert all(c == 1 for c in acc.report().per_server_states.values())

    def test_subset_tracking(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        acc = StateSpaceAccountant(["s000"])
        acc.observe_world(handle.world)
        assert list(acc.report().per_server_states) == ["s000"]

    def test_observe_digests(self):
        acc = StateSpaceAccountant()
        acc.observe_digests({"s0": (1,), "s1": (2,)})
        acc.observe_digests({"s0": (1,), "s1": (3,)})
        report = acc.report()
        assert report.per_server_states == {"s0": 1, "s1": 2}

    def test_merge(self):
        a = StateSpaceAccountant()
        b = StateSpaceAccountant()
        a.observe_digests({"s0": (1,)})
        b.observe_digests({"s0": (2,)})
        a.merge(b)
        assert a.report().per_server_states == {"s0": 2}

    def test_distinct_states_query(self):
        acc = StateSpaceAccountant()
        acc.observe_digests({"s0": (1,)})
        assert acc.distinct_states("s0") == 1
        assert acc.distinct_states("ghost") == 0


class TestReport:
    def test_bits_are_log2_of_counts(self):
        acc = StateSpaceAccountant()
        for i in range(8):
            acc.observe_digests({"s0": (i,), "s1": (i % 2,)})
        report = acc.report()
        assert report.per_server_bits["s0"] == 3.0
        assert report.per_server_bits["s1"] == 1.0
        assert report.total_bits == 4.0
        assert report.max_bits == 3.0

    def test_total_bits_over_subset(self):
        acc = StateSpaceAccountant()
        for i in range(4):
            acc.observe_digests({"s0": (i,), "s1": (0,), "s2": (i,)})
        report = acc.report()
        assert report.total_bits_over(["s0", "s1"]) == 2.0

    def test_abd_state_space_lower_bounds_value_space(self):
        """Writing every value forces >= |V| states across servers."""
        value_bits = 3
        handle = build_abd_system(n=3, f=1, value_bits=value_bits)
        acc = StateSpaceAccountant()
        for v in range(1 << value_bits):
            handle.write(v)
            acc.observe_world(handle.world)
        # each ABD server individually stores the full value
        report = acc.report()
        assert report.max_bits >= value_bits
