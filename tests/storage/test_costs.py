"""Tests for point-in-time storage measurement."""

import pytest

from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.storage.costs import peak_storage_during, storage_snapshot
from repro.workload.patterns import concurrent_writes_driver


class TestSnapshot:
    def test_snapshot_shape(self):
        handle = build_abd_system(n=4, f=1, value_bits=8)
        snap = storage_snapshot(handle)
        assert len(snap.per_server_bits) == 4
        assert snap.total_bits == 32.0
        assert snap.max_bits == 8.0

    def test_normalization(self):
        handle = build_abd_system(n=4, f=1, value_bits=8)
        snap = storage_snapshot(handle)
        assert snap.normalized_total(8) == 4.0
        assert snap.normalized_max(8) == 1.0

    def test_metadata_flag(self):
        handle = build_abd_system(n=4, f=1, value_bits=8)
        with_meta = storage_snapshot(handle, count_metadata=True)
        without = storage_snapshot(handle, count_metadata=False)
        assert with_meta.total_bits > without.total_bits


class TestPeakDuring:
    def test_abd_peak_flat(self):
        """ABD's peak equals its resting cost: N values, any concurrency."""
        handle = build_abd_system(n=4, f=1, value_bits=8, num_writers=3)
        peak = peak_storage_during(
            handle, concurrent_writes_driver([1, 2, 3])
        )
        assert peak.normalized_total(8) == 4.0

    def test_cas_peak_grows_with_concurrency(self):
        handle1 = build_cas_system(n=5, f=1, value_bits=12, num_writers=1)
        peak1 = peak_storage_during(handle1, concurrent_writes_driver([1]))
        handle3 = build_cas_system(n=5, f=1, value_bits=12, num_writers=3)
        peak3 = peak_storage_during(
            handle3, concurrent_writes_driver([1, 2, 3])
        )
        assert peak3.total_bits > peak1.total_bits

    def test_all_operations_complete(self):
        handle = build_abd_system(n=4, f=1, value_bits=8, num_writers=2)
        peak_storage_during(handle, concurrent_writes_driver([1, 2]))
        assert not handle.world.pending_operations()

    def test_driver_with_too_many_values_rejected(self):
        from repro.errors import ConfigurationError

        handle = build_abd_system(n=4, f=1, value_bits=8, num_writers=1)
        with pytest.raises(ConfigurationError):
            peak_storage_during(handle, concurrent_writes_driver([1, 2]))
