"""Registry semantics: instrument edge cases, merge, and the null registry."""

import copy

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    TimeSeries,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registry_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        reg.inc("a", 3)
        assert reg.counter("a").value == 3


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("q")
        assert g.value is None and g.min_seen is None and g.max_seen is None
        g.set(5)
        g.set(2)
        g.set(9)
        assert (g.value, g.min_seen, g.max_seen) == (9, 2, 9)

    def test_negative_and_zero_values(self):
        g = Gauge("q")
        g.set(0)
        g.set(-3)
        assert (g.value, g.min_seen, g.max_seen) == (-3, -3, 0)


class TestHistogram:
    def test_empty_histogram_is_all_none(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean() is None
        assert h.min() is None
        assert h.max() is None
        assert h.quantile(0.5) is None
        assert h.summary()["p99"] is None

    def test_single_observation(self):
        h = Histogram("lat")
        h.observe(7)
        assert h.mean() == 7
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 7

    def test_exact_nearest_rank_quantiles(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.quantile(0.5) == 50
        assert h.quantile(0.9) == 90
        assert h.quantile(0.99) == 99
        assert h.quantile(1.0) == 100
        assert h.quantile(0.0) == 1  # rank clamps to 1

    def test_quantile_out_of_range_raises(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_summary_shape(self):
        h = Histogram("lat")
        h.observe(1)
        h.observe(3)
        s = h.summary()
        assert s["count"] == 2
        assert s["total"] == 4
        assert s["mean"] == 2
        assert s["min"] == 1 and s["max"] == 3


class TestTimeSeries:
    def test_same_step_overwrites(self):
        ts = TimeSeries("storage")
        ts.record(3, 10)
        ts.record(3, 12)
        ts.record(5, 11)
        assert ts.points() == [(3, 12), (5, 11)]
        assert ts.max_value() == 12
        assert ts.step_of_max() == 3

    def test_empty_series(self):
        ts = TimeSeries("storage")
        assert ts.last() is None
        assert ts.max_value() is None
        assert ts.min_value() is None
        assert ts.step_of_max() is None
        assert len(ts) == 0


class TestMerge:
    def test_counters_add_histograms_concat_series_sorted(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("msgs", 2)
        b.inc("msgs", 3)
        b.inc("only-b")
        a.histogram("lat").observe(1)
        b.histogram("lat").observe(9)
        a.timeseries("s").record(1, 10)
        a.timeseries("s").record(4, 40)
        b.timeseries("s").record(2, 20)
        b.timeseries("s").record(4, 44)  # tie: other wins
        a.gauge("g").set(5)
        b.gauge("g").set(1)

        merged = a.merge(b)
        assert merged is a
        assert a.counter("msgs").value == 5
        assert a.counter("only-b").value == 1
        assert sorted(a.histogram("lat").observations) == [1, 9]
        assert a.timeseries("s").points() == [(1, 10), (2, 20), (4, 44)]
        assert a.gauge("g").value == 1
        assert a.gauge("g").min_seen == 1
        assert a.gauge("g").max_seen == 5

    def test_merge_null_registry_is_noop(self):
        a = MetricsRegistry()
        a.inc("x")
        a.merge(NULL_REGISTRY)
        assert a.counter("x").value == 1

    def test_snapshot_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert set(snap) == {"counters", "gauges", "histograms", "series"}


class TestNullRegistry:
    def test_falsy_and_inert(self):
        null = NullRegistry()
        assert not null
        null.inc("x", 100)
        null.counter("x").inc(5)
        null.gauge("g").set(1)
        null.histogram("h").observe(1)
        null.timeseries("t").record(1, 1)
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }

    def test_deepcopy_returns_same_object(self):
        assert copy.deepcopy(NULL_REGISTRY) is NULL_REGISTRY

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled
