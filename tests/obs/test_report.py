"""MetricsReport: bound comparison rows, deterministic JSON, rendering."""

import json

import pytest

from repro.core.bounds import singleton_total_bits
from repro.obs.recorder import NO_OP, SimObserver
from repro.obs.report import MetricsReport, REPORT_SCHEMA, storage_bound_rows
from repro.obs.runner import run_instrumented_workload
from repro.registers.cas import build_cas_system


def _rows_by_key(rows):
    return {(r["theorem"], r["scope"]): r for r in rows}


class TestStorageBoundRows:
    def test_all_eight_rows_present(self):
        rows = storage_bound_rows(5, 2, 8, 2, 1000.0, 200.0)
        assert len(rows) == 8
        keys = {(r["theorem"], r["scope"]) for r in rows}
        assert keys == {
            (t, s)
            for t in ("theorem_b1", "theorem_41", "theorem_51", "theorem_65")
            for s in ("total", "max")
        }

    def test_satisfied_when_observed_meets_bound(self):
        bound = singleton_total_bits(5, 2, 2 ** 8)
        rows = _rows_by_key(storage_bound_rows(5, 2, 8, 2, bound, bound))
        assert rows[("theorem_b1", "total")]["status"] == "satisfied"
        assert rows[("theorem_b1", "total")]["bound_bits"] == bound

    def test_violated_when_observed_below_bound(self):
        rows = _rows_by_key(storage_bound_rows(5, 2, 8, 2, 0.5, 0.1))
        assert rows[("theorem_b1", "total")]["status"] == "VIOLATED"

    def test_theorem_41_inapplicable_at_f_below_2(self):
        rows = _rows_by_key(storage_bound_rows(5, 1, 8, 2, 100.0, 20.0))
        row = rows[("theorem_41", "total")]
        assert row["status"] == "n/a"
        assert row["bound_bits"] is None
        assert row["note"]  # the BoundError message survives into the row
        assert rows[("theorem_b1", "total")]["status"] == "satisfied"

    def test_unmeasured_when_no_observation(self):
        rows = _rows_by_key(storage_bound_rows(5, 2, 8, 2, None, None))
        assert rows[("theorem_b1", "total")]["status"] == "unmeasured"


class TestJson:
    @pytest.fixture
    def run(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        return run_instrumented_workload(handle, num_ops=8, seed=2)

    def test_schema_and_sections(self, run):
        doc = run.report().to_json_dict()
        assert doc["schema"] == REPORT_SCHEMA
        for section in ("meta", "counters", "gauges", "histograms",
                        "series", "spans", "bounds"):
            assert section in doc
        assert doc["meta"]["algorithm"] == "cas"
        assert doc["meta"]["nu_observed"] >= 1
        assert doc["spans"]["open"] == []
        assert doc["spans"]["unmatched_ends"] == []

    def test_observed_max_meets_theorem_b1(self, run):
        rows = _rows_by_key(run.report().to_json_dict()["bounds"])
        row = rows[("theorem_b1", "total")]
        assert row["status"] == "satisfied"
        assert row["observed_bits"] >= row["bound_bits"]

    def test_byte_identical_across_same_seed_runs(self):
        payloads = []
        for _ in range(2):
            handle = build_cas_system(n=5, f=1, value_bits=12)
            run = run_instrumented_workload(handle, num_ops=8, seed=2)
            payloads.append(run.report().to_json())
        assert payloads[0] == payloads[1]

    def test_write_json_and_jsonl(self, run, tmp_path):
        report = run.report()
        json_path = tmp_path / "report.json"
        jsonl_path = tmp_path / "series.jsonl"
        report.write_json(str(json_path))
        report.write_series_jsonl(str(jsonl_path))

        doc = json.loads(json_path.read_text())
        assert doc["schema"] == REPORT_SCHEMA

        lines = [json.loads(l) for l in jsonl_path.read_text().splitlines()]
        assert lines
        assert set(lines[0]) == {"series", "step", "value"}
        names = {l["series"] for l in lines}
        assert "storage.total_bits" in names

    def test_include_bounds_false_omits_section(self, run):
        doc = run.report(include_bounds=False).to_json_dict()
        assert "bounds" not in doc


class TestFormat:
    def test_sections_render(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        run = run_instrumented_workload(handle, num_ops=6, seed=0)
        text = run.report().format()
        for fragment in ("metrics report", "counters", "spans (steps)",
                         "time series", "lower bounds"):
            assert fragment in text
        assert "WARNING" not in text  # clean run: no orphan spans

    def test_empty_observer_renders(self):
        report = MetricsReport({"algorithm": "none"}, NO_OP)
        text = report.format()
        assert "metrics report" in text

    def test_orphan_span_warning(self):
        obs = SimObserver()
        obs.spans.begin("c", "op/write", 0)
        obs.spans.end("c", "never-opened", 1)
        report = MetricsReport({}, obs)
        text = report.format()
        assert "never closed" in text
        assert "unmatched" in text
