"""Span nesting, orphan detection, and duration statistics."""

import copy

from repro.obs.spans import NullSpanTracker, NULL_SPANS, SpanTracker


class TestNesting:
    def test_child_records_parent_and_inherits_op_id(self):
        t = SpanTracker()
        op = t.begin("w1", "op/write", step=0, op_id=7)
        phase = t.begin("w1", "write/query", step=1)
        assert phase.parent_id == op.span_id
        assert phase.op_id == 7  # inherited from the enclosing span
        t.end("w1", "write/query", step=4)
        t.end("w1", "op/write", step=6)
        assert phase.duration_steps == 3
        assert op.duration_steps == 6
        assert not t.open_spans()

    def test_owners_do_not_share_stacks(self):
        t = SpanTracker()
        a = t.begin("w1", "op/write", step=0)
        b = t.begin("r1", "op/read", step=0)
        assert a.parent_id is None
        assert b.parent_id is None
        t.end("r1", "op/read", step=2)
        assert t.open_spans() == [a]

    def test_end_closes_innermost_matching_name(self):
        t = SpanTracker()
        outer = t.begin("c", "read/query", step=0)
        inner = t.begin("c", "read/query", step=2)
        closed = t.end("c", "read/query", step=5)
        assert closed is inner
        assert outer.is_open

    def test_explicit_op_id_wins_over_inherited(self):
        t = SpanTracker()
        t.begin("c", "op/read", step=0, op_id=1)
        child = t.begin("c", "read/query", step=0, op_id=99)
        assert child.op_id == 99


class TestOrphans:
    def test_unmatched_end_is_recorded_not_raised(self):
        t = SpanTracker()
        assert t.end("c", "never-begun", step=3) is None
        assert t.unmatched_ends == [
            {"owner": "c", "name": "never-begun", "step": 3}
        ]

    def test_open_spans_lists_unclosed(self):
        t = SpanTracker()
        s = t.begin("c", "op/write", step=0)
        assert t.open_spans() == [s]
        assert s.duration_steps is None
        assert s.to_json_dict()["end_step"] is None


class TestStats:
    def test_stats_cover_closed_spans_only(self):
        t = SpanTracker()
        for i, dur in enumerate((2, 4, 6)):
            t.begin("c", "write/query", step=10 * i)
            t.end("c", "write/query", step=10 * i + dur)
        t.begin("c", "write/query", step=99)  # left open: excluded
        s = t.stats()["write/query"]
        assert s["count"] == 3
        assert s["total_steps"] == 12
        assert s["mean_steps"] == 4
        assert (s["min_steps"], s["max_steps"]) == (2, 6)
        assert s["p50_steps"] == 4
        assert s["p95_steps"] == 6

    def test_no_wall_times_by_default(self):
        t = SpanTracker()
        t.begin("c", "op/read", step=0)
        t.end("c", "op/read", step=1)
        assert t.spans[0].wall_seconds is None
        assert t.wall_stats() == {}
        assert "wall_seconds" not in t.spans[0].to_json_dict()

    def test_wall_times_when_requested(self):
        t = SpanTracker(record_wall=True)
        t.begin("c", "op/read", step=0)
        t.end("c", "op/read", step=1)
        assert t.spans[0].wall_seconds >= 0
        assert t.wall_stats()["op/read"]["count"] == 1


class TestNullSpanTracker:
    def test_falsy_and_inert(self):
        assert not NULL_SPANS
        assert NULL_SPANS.begin("c", "x", 0) is None
        assert NULL_SPANS.end("c", "x", 1) is None
        assert NULL_SPANS.open_spans() == []
        assert NULL_SPANS.stats() == {}
        assert NULL_SPANS.to_json_list() == []
        assert NULL_SPANS.unmatched_ends == []

    def test_deepcopy_returns_same_object(self):
        assert copy.deepcopy(NULL_SPANS) is NULL_SPANS
        assert isinstance(NULL_SPANS, NullSpanTracker)
