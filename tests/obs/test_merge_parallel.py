"""Merged-registry equivalence for multi-run telemetry.

``repro metrics --runs K --jobs J`` merges per-worker registry
snapshots in seed order; these tests pin the two properties that make
the merged report trustworthy: merge arithmetic (counters add,
histogram observations concatenate) and fold determinism (the merged
snapshot is identical at any job count).
"""

import pytest

from repro.cli import _metrics_task
from repro.obs.runner import merge_registries
from repro.parallel import run_tasks


def _payload(seed):
    return {
        "algorithm": "cas",
        "n": 5,
        "f": 1,
        "value_bits": 6,
        "writers": 2,
        "readers": 2,
        "ops": 4,
        "read_fraction": 0.5,
        "seed": seed,
    }


@pytest.fixture(scope="module")
def per_run():
    return [_metrics_task(_payload(seed)) for seed in (0, 1, 2)]


class TestMergeArithmetic:
    def test_counters_add(self, per_run):
        merged = merge_registries(r["registry"] for r in per_run)
        snapshots = [r["registry"].snapshot() for r in per_run]
        merged_counters = merged.snapshot()["counters"]
        for name in merged_counters:
            assert merged_counters[name] == sum(
                s["counters"].get(name, 0) for s in snapshots
            ), name
        assert merged_counters["sim.messages_sent"] > 0

    def test_histogram_counts_add(self, per_run):
        merged = merge_registries(r["registry"] for r in per_run)
        snapshots = [r["registry"].snapshot() for r in per_run]
        for name, h in merged.snapshot()["histograms"].items():
            assert h["count"] == sum(
                s["histograms"].get(name, {}).get("count", 0) for s in snapshots
            ), name


class TestFoldDeterminism:
    def test_parallel_fold_matches_serial(self):
        payloads = [_payload(seed) for seed in range(4)]
        serial = run_tasks(_metrics_task, payloads, jobs=1)
        parallel = run_tasks(_metrics_task, payloads, jobs=2)

        assert [r["seed"] for r in parallel] == [r["seed"] for r in serial]
        assert [r["steps"] for r in parallel] == [r["steps"] for r in serial]

        merged_serial = merge_registries(r["registry"] for r in serial)
        merged_parallel = merge_registries(r["registry"] for r in parallel)
        assert merged_parallel.snapshot() == merged_serial.snapshot()
