"""Observer wiring: metrics from real runs, and the instrumentation-off
guarantee — attaching a SimObserver changes no scheduler decision."""

import copy

import pytest

from repro.obs.recorder import NO_OP, NullObserver, SimObserver, estimate_message_bits
from repro.obs.runner import run_instrumented_workload
from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.sim.events import Message
from repro.sim.snapshot import world_digest
from repro.workload.generator import run_random_workload


class TestEstimateMessageBits:
    def test_kind_and_keys_cost_8_bits_per_char(self):
        # "ack" = 24 bits; no body.
        assert estimate_message_bits(Message.make("ack")) == 24

    def test_ints_cost_bit_length_min_one(self):
        base = estimate_message_bits(Message.make("m"))
        with_zero = estimate_message_bits(Message.make("m", v=0))
        with_big = estimate_message_bits(Message.make("m", v=255))
        assert with_zero == base + 8 + 1  # key "v" + 1 bit minimum
        assert with_big == base + 8 + 8

    def test_none_is_free_and_monotone_in_payload(self):
        none_msg = estimate_message_bits(Message.make("m", v=None))
        small = estimate_message_bits(Message.make("m", v="ab"))
        large = estimate_message_bits(Message.make("m", v="abcd"))
        assert none_msg < small < large

    def test_sequences_cost_per_item(self):
        one = estimate_message_bits(Message.make("m", v=(7,)))
        two = estimate_message_bits(Message.make("m", v=(7, 7)))
        assert two == one + 3  # one extra 3-bit int


class TestNullObserver:
    def test_falsy_singleton_survives_deepcopy(self):
        assert not NO_OP
        assert copy.deepcopy(NO_OP) is NO_OP
        assert isinstance(NO_OP, NullObserver)

    def test_world_default_observer_is_shared_noop(self):
        handle = build_abd_system(n=5, f=2, value_bits=8)
        assert handle.world.obs is NO_OP
        forked = handle.world.fork()
        assert forked.obs is NO_OP

    def test_unguarded_calls_are_safe(self):
        NO_OP.on_send(None, "a", "b", None)
        NO_OP.on_action(None, None)
        assert NO_OP.begin_span("c", "x", 0) is None
        assert NO_OP.end_span("c", "x", 0) is None


class TestWiring:
    def test_counters_series_and_spans_from_a_real_run(self, small_cas):
        run = run_instrumented_workload(small_cas, num_ops=8, seed=3)
        reg = run.observer.registry

        sent = reg.counter("sim.messages_sent").value
        assert sent > 0
        assert reg.counter("sim.message_bits_sent").value > 0
        assert reg.histogram("sim.message_bits").count == sent
        assert reg.counter("sim.actions.deliver").value > 0
        assert (
            reg.counter("ops.invoked.write").value
            + reg.counter("ops.invoked.read").value
            == 8
        )
        # every invoked op completed, so every op span is closed
        assert not run.observer.spans.open_spans()
        assert not run.observer.spans.unmatched_ends

        storage = reg.series.get("storage.total_bits")
        assert storage is not None
        assert storage.max_value() > 0
        assert storage.steps() == sorted(storage.steps())

    def test_cas_phase_spans_present(self, small_cas):
        run = run_instrumented_workload(small_cas, num_ops=8, seed=3)
        stats = run.observer.spans.stats()
        for phase in (
            "op/write", "op/read",
            "write/query", "write/pre-write", "write/finalize",
            "read/query", "read/collect",
        ):
            assert phase in stats, f"missing span stats for {phase}"
            assert stats[phase]["count"] > 0

    def test_abd_phase_spans_present(self, small_abd):
        run = run_instrumented_workload(small_abd, num_ops=8, seed=3)
        stats = run.observer.spans.stats()
        for phase in ("write/query", "write/propagate", "read/query"):
            assert phase in stats

    def test_op_latency_matches_trace(self, small_abd):
        run = run_instrumented_workload(small_abd, num_ops=6, seed=1)
        hist_total = sum(
            run.observer.registry.histogram(f"ops.latency_steps.{kind}").total
            for kind in ("write", "read")
        )
        trace_total = sum(
            op.response_step - op.invoke_step
            for op in small_abd.trace().operations
            if op.is_complete
        )
        assert hist_total == trace_total


@pytest.mark.tier2
class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_observer_changes_no_scheduler_decision(self, seed):
        instrumented = build_cas_system(n=5, f=1, value_bits=12)
        plain = build_cas_system(n=5, f=1, value_bits=12)

        run_instrumented_workload(instrumented, num_ops=10, seed=seed)
        run_random_workload(plain, 10, seed=seed)

        assert world_digest(instrumented.world) == world_digest(plain.world)

    def test_same_seed_same_snapshot(self):
        snaps = []
        for _ in range(2):
            handle = build_abd_system(n=5, f=2, value_bits=8)
            run = run_instrumented_workload(handle, num_ops=10, seed=4)
            snaps.append(run.observer.registry.snapshot())
        assert snaps[0] == snaps[1]

    def test_sample_storage_off_skips_storage_series(self, small_abd):
        obs = SimObserver(sample_storage=False)
        run = run_instrumented_workload(small_abd, num_ops=4, seed=0, observer=obs)
        assert "storage.total_bits" not in run.observer.registry.series
        assert run.observer.registry.counter("sim.messages_sent").value > 0
