"""Causal tracing: collector semantics, export formats, determinism."""

import copy
import json
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import FaultConfig, run_chaos_workload
from repro.obs.recorder import SimObserver
from repro.obs.tracing import (
    TRACE_SCHEMA,
    TraceCollector,
    capture_trace_task,
    chrome_trace_dict,
    slice_document,
    trace_document,
    validate_trace_document,
)
from repro.parallel.pool import run_tasks
from repro.registers.catalog import build_client_system


def msg(kind="ping"):
    return SimpleNamespace(kind=kind)


class TestCollector:
    def test_program_order_parent(self):
        tc = TraceCollector()
        tc.on_invoke(1, SimpleNamespace(op_id=0, kind="read", client="r000"))
        tc.on_response(
            5,
            SimpleNamespace(
                op_id=0, kind="read", client="r000", value=3,
                invoke_step=1, response_step=5,
            ),
        )
        first, second = tc.events
        assert second.parents == (first.event_id,)
        assert second.lamport == first.lamport + 1

    def test_message_edge_and_lamport(self):
        tc = TraceCollector()
        m = msg()
        tc.on_send(1, "w000", "s000", m)
        tc.on_deliver(3, "w000", "s000", m)
        send, deliver = tc.events
        assert send.event_id in deliver.parents
        assert deliver.extra["send_id"] == send.event_id
        assert deliver.lamport > send.lamport

    def test_duplicate_delivery_shares_send(self):
        tc = TraceCollector()
        m = msg()
        tc.on_send(1, "w000", "s000", m)
        tc.on_duplicate(2, "w000", "s000", m)
        tc.on_deliver(3, "w000", "s000", m)
        tc.on_deliver(4, "w000", "s000", m)
        send = tc.events[0]
        delivers = [e for e in tc.events if e.kind == "deliver"]
        assert len(delivers) == 2
        assert all(d.extra["send_id"] == send.event_id for d in delivers)

    def test_tamper_rekeys_causal_ancestry(self):
        tc = TraceCollector()
        original, tampered = msg("pre"), msg("pre-corrupt")
        tc.on_send(1, "w000", "s000", original)
        tc.on_tamper(2, "w000", "s000", original, tampered, "byzantine:garbage")
        tc.on_deliver(3, "w000", "s000", tampered)
        send = tc.events[0]
        tamper = next(e for e in tc.events if e.kind == "tamper")
        deliver = next(e for e in tc.events if e.kind == "deliver")
        assert tamper.extra["corruption"] == "byzantine:garbage"
        assert tamper.extra["tampered_kind"] == "pre-corrupt"
        assert deliver.extra["send_id"] == send.event_id

    def test_bounded_tail_counts_drops(self):
        tc = TraceCollector(max_events=3)
        for step in range(10):
            tc.on_crash(step, "s000")
        assert len(tc.events) == 3
        assert tc.dropped == 7
        assert [e.step for e in tc.events] == [7, 8, 9]
        assert len(tc.tail_json(2)) == 2

    def test_storage_samples_dedup_unchanged(self):
        tc = TraceCollector()
        tc.on_storage(1, 30.0, 6.0)
        tc.on_storage(2, 30.0, 6.0)
        tc.on_storage(3, 36.0, 12.0)
        assert [e.step for e in tc.events] == [1, 3]

    def test_deepcopy_keeps_history_drops_message_map(self):
        tc = TraceCollector()
        m = msg()
        tc.on_send(1, "w000", "s000", m)
        clone = copy.deepcopy(tc)
        assert [e.to_json_dict() for e in clone.events] == [
            e.to_json_dict() for e in tc.events
        ]
        # The id-keyed send map cannot survive a deep copy (copied
        # messages get fresh ids): the clone's delivery loses only its
        # message edge, never crashes.
        clone.on_deliver(2, "w000", "s000", m)
        deliver = clone.events[-1]
        assert "send_id" not in deliver.extra
        # The original still resolves the edge.
        tc.on_deliver(2, "w000", "s000", m)
        assert tc.events[-1].extra["send_id"] == tc.events[0].event_id


class TestDocuments:
    def make_doc(self):
        tc = TraceCollector()
        m = msg()
        tc.on_send(10, "w000", "s000", m)
        tc.on_deliver(20, "w000", "s000", m)
        tc.on_crash(90, "s001")
        spans = [
            {"span_id": 0, "name": "op/write", "owner": "w000",
             "begin_step": 10, "end_step": 25, "duration_steps": 15,
             "op_id": 0, "parent_id": None},
            {"span_id": 1, "name": "read/query", "owner": "r000",
             "begin_step": 80, "end_step": None, "duration_steps": None,
             "op_id": 1, "parent_id": None},
        ]
        return trace_document(tc, spans, {"algorithm": "abd"})

    def test_schema_and_validation(self):
        doc = self.make_doc()
        assert doc["schema"] == TRACE_SCHEMA
        assert validate_trace_document(doc) is doc
        with pytest.raises(ConfigurationError):
            validate_trace_document({"schema": "repro.trace/999"})

    def test_slice_window_and_dangling_parents(self):
        doc = self.make_doc()
        sliced = slice_document(doc, around=20, radius=15)
        assert [e["kind"] for e in sliced["events"]] == ["send", "deliver"]
        # Only the span overlapping the window survives.
        assert [s["span_id"] for s in sliced["spans"]] == [0]
        assert sliced["meta"]["slice"] == {"around": 20, "radius": 15}
        assert sliced["dropped_events"] == 1
        assert sliced["dangling_parents"] == 0
        # A slice is itself a valid, re-exportable trace document.
        chrome_trace_dict(sliced)
        narrower = slice_document(sliced, around=20, radius=3)
        assert [e["kind"] for e in narrower["events"]] == ["deliver"]
        assert narrower["dangling_parents"] == 1  # parent send sliced away

    def test_chrome_export_structure(self):
        chrome = chrome_trace_dict(self.make_doc())
        events = chrome["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        names = {
            e["args"]["name"] for e in by_ph["M"]
            if e["name"] == "thread_name"
        }
        assert {"environment", "w000", "s000", "s001"} <= names
        # Spans -> X completes; the open span is orphan-flagged and
        # extended to the end of the trace.
        spans = {e["args"]["span_id"]: e for e in by_ph["X"]}
        assert spans[0]["dur"] == 15 and "orphan" not in spans[0]["args"]
        assert spans[1]["args"]["orphan"] is True
        # send->deliver becomes one s/f flow pair with matching ids.
        (start,), (finish,) = by_ph["s"], by_ph["f"]
        assert start["id"] == finish["id"]
        assert start["ts"] == 10 and finish["ts"] == 20
        # The crash is a thread-scoped instant.
        (crash,) = [e for e in by_ph["i"] if e["cat"] == "crash"]
        assert crash["s"] == "t"


CONFIG = FaultConfig(
    name="crash-recover", seed=0, crash_recovery=True, fault_target_count=1
)


def traced_run(num_ops=6):
    handle = build_client_system("abd", 5, 1, 6)
    tracer = TraceCollector()
    handle.world.obs = SimObserver(tracer=tracer)
    result = run_chaos_workload(handle, CONFIG, num_ops=num_ops, max_ticks=4000)
    return handle, tracer, result


class TestEndToEnd:
    def test_traced_chaos_run_narrates_everything(self):
        handle, tracer, result = traced_run()
        kinds = {e.kind for e in tracer.events}
        assert {"send", "deliver", "invoke", "response", "crash", "recover",
                "phase-begin", "phase-end", "storage"} <= kinds
        # Every deliver's message edge points at a send event.
        by_id = {e.event_id: e for e in tracer.events}
        for e in tracer.events:
            if e.kind == "deliver" and "send_id" in e.extra:
                assert by_id[e.extra["send_id"]].kind == "send"
        # Result carries the bounded tail.
        assert result.trace_tail
        assert len(result.trace_tail) <= 64

    def test_capture_task_is_deterministic(self):
        payload = {
            "algorithm": "abd",
            "config": CONFIG.to_cache_dict(),
            "n": 5, "f": 1, "value_bits": 6,
            "num_ops": 4, "max_ticks": 4000,
        }
        one = capture_trace_task(dict(payload))
        two = capture_trace_task(dict(payload))
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
        assert one["meta"]["verdict"] == "live"

    def test_capture_byte_identical_at_any_jobs(self):
        payloads = [
            {
                "algorithm": "abd",
                "config": FaultConfig(name="dups", seed=seed,
                                      duplicate_probability=0.2).to_cache_dict(),
                "n": 5, "f": 1, "value_bits": 6,
                "num_ops": 4, "max_ticks": 4000,
            }
            for seed in (0, 1)
        ]
        outputs = {}
        for jobs in (1, 4):
            docs = [None] * len(payloads)

            def collect(index, doc):
                docs[index] = doc

            run_tasks(
                capture_trace_task,
                [dict(p) for p in payloads],
                jobs=jobs,
                on_result=collect,
            )
            outputs[jobs] = json.dumps(docs, sort_keys=True, indent=2)
        assert outputs[1] == outputs[4]
