"""Campaign analytics: folds, envelopes, anomaly flags, determinism."""

import json
from types import SimpleNamespace

import pytest

from repro.faults.campaign import run_campaign
from repro.obs.analytics import (
    ANALYTICS_SCHEMA,
    analyze_campaign,
    downsample_series,
    format_analytics,
    max_concurrent_writes,
    percentile,
    storage_envelope_bits,
)

PARAMS = dict(
    algorithms=("abd", "casgc"), n=5, f=1, value_bits=6,
    seeds=[0], num_ops=6, max_ticks=8000,
)


@pytest.fixture(scope="module")
def report():
    return run_campaign(telemetry=True, **PARAMS)


@pytest.fixture(scope="module")
def doc(report):
    return analyze_campaign(report)


class TestHelpers:
    def test_percentile_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.50) == 5
        assert percentile(values, 0.90) == 9
        assert percentile(values, 0.99) == 10
        assert percentile([7], 0.50) == 7
        assert percentile([], 0.50) is None

    def test_max_concurrent_writes(self):
        def op(kind, start, end):
            return SimpleNamespace(
                kind=kind, invoke_step=start, response_step=end
            )

        ops = [
            op("write", 0, 10),
            op("write", 5, 15),   # overlaps the first
            op("write", 20, 30),  # disjoint
            op("read", 0, 100),   # reads never count
        ]
        assert max_concurrent_writes(ops) == 2
        # An unfinished write stays active to the end of the run.
        ops.append(op("write", 25, None))
        assert max_concurrent_writes(ops) == 2
        ops.append(op("write", 26, 27))
        assert max_concurrent_writes(ops) == 3
        assert max_concurrent_writes([]) == 0

    def test_downsample_bounded_and_stable(self):
        points = [(i, float(i)) for i in range(1000)]
        out = downsample_series(points, limit=100)
        assert len(out) <= 101
        assert out[0] == [0, 0.0] and out[-1] == [999, 999.0]
        assert downsample_series(points, limit=100) == out
        short = [(0, 1.0), (5, 2.0)]
        assert downsample_series(short) == [[0, 1.0], [5, 2.0]]

    def test_envelope_formulas(self):
        # ABD: every server always stores exactly one full value.
        assert storage_envelope_bits("abd", 5, 6, writes=9) == 30.0
        # Coded: at most one element per version ever written.
        assert storage_envelope_bits("cas", 5, 6, writes=3,
                                     symbol_bits=2.0) == 40.0
        assert storage_envelope_bits("casgc", 5, 6, writes=3,
                                     symbol_bits=2.0) == 40.0
        assert storage_envelope_bits("cas", 5, 6, writes=3) is None
        assert storage_envelope_bits("unknown", 5, 6, writes=3) is None


class TestAnalyzeCampaign:
    def test_schema_and_bucketing(self, report, doc):
        assert doc["schema"] == ANALYTICS_SCHEMA
        assert doc["runs"] == len(report.results)
        assert doc["telemetry_runs"] == doc["runs"]
        assert sum(doc["verdicts"].values()) == doc["runs"]
        assert set(doc["algorithms"]) == {"abd", "casgc"}

    def test_phase_percentiles_cover_all_algorithms(self, doc):
        abd = doc["algorithms"]["abd"]["phases"]
        casgc = doc["algorithms"]["casgc"]["phases"]
        assert {"op/read", "op/write", "write/query"} <= set(abd)
        assert {"read/query", "write/pre-write", "write/finalize"} <= set(casgc)
        stats = abd["op/write"]
        assert stats["count"] > 0
        assert stats["p50"] <= stats["p90"] <= stats["p99"] <= stats["max"]

    def test_storage_envelopes_and_bounds(self, doc):
        for algorithm, section in doc["algorithms"].items():
            storage = section["storage"]
            assert storage["peak_total_bits"] > 0
            assert storage["envelope"], algorithm
            peaks = [v for _, v in storage["envelope"]]
            assert max(peaks) == storage["peak_total_bits"]
            # The hard envelope prediction holds on every clean-ish run.
            assert storage["peak_total_bits"] <= storage["envelope_bound_bits"]
            theorems = {row["theorem"] for row in storage["bounds"]}
            assert {"theorem_b1", "theorem_41", "theorem_51",
                    "theorem_65"} <= theorems
            refs = section["storage"]["reference_bounds_bits"]
            assert refs["bks_integrated_bits"] is not None
        assert doc["algorithms"]["casgc"]["storage"]["gc_expected_bits"] > 0

    def test_expected_anomalies_flagged(self, doc):
        kinds = {(a["algorithm"], a["kind"], a["detail"])
                 for a in doc["anomalies"]}
        # The grid's two intentional stall shapes are diagnosed, never
        # silent; no clean run exceeds its storage envelope.
        for algorithm in ("abd", "casgc"):
            assert (algorithm, "diagnosed-stall", "partition-isolated") in kinds
            assert (algorithm, "diagnosed-stall", "quorum-unavailable") in kinds
        assert not any(a["kind"] == "storage-over-envelope"
                       for a in doc["anomalies"])

    def test_inflated_peak_triggers_envelope_anomaly(self, report):
        import copy

        rigged = copy.deepcopy(report)
        victim = next(r for r in rigged.results if r.algorithm == "abd")
        victim.telemetry["storage"]["peak_total_bits"] = 1e9
        flagged = analyze_campaign(rigged)["anomalies"]
        assert any(
            a["kind"] == "storage-over-envelope" and a["algorithm"] == "abd"
            for a in flagged
        )

    def test_verdict_counter_emitted_per_run(self, report):
        for r in report.results:
            counters = r.telemetry["counters"]
            assert counters["faults.verdict." + r.verdict()] >= 1

    def test_format_smoke(self, doc):
        text = format_analytics(doc)
        assert "campaign analytics" in text
        assert "per-phase latency" in text
        assert "anomalies" in text

    def test_telemetry_free_report_degrades_gracefully(self):
        plain = run_campaign(algorithms=("abd",), n=5, f=1, value_bits=6,
                             seeds=[0], num_ops=4, max_ticks=8000)
        doc = analyze_campaign(plain)
        assert doc["telemetry_runs"] == 0
        assert doc["algorithms"]["abd"]["phases"] == {}
        assert doc["algorithms"]["abd"]["storage"]["peak_total_bits"] is None
        format_analytics(doc)  # must not crash


class TestDeterminism:
    def test_analytics_byte_identical_at_any_jobs(self):
        docs = {}
        for jobs in (1, 4):
            report = run_campaign(jobs=jobs, telemetry=True, **PARAMS)
            docs[jobs] = json.dumps(
                analyze_campaign(report), sort_keys=True, indent=2
            )
        assert docs[1] == docs[4]

    def test_chaos_json_verdict_bucket(self, report):
        summary = report.to_json_dict()["summary"]
        assert sum(summary["verdicts"].values()) == len(report.results)
        for entry in report.to_json_dict()["runs"]:
            assert "verdict" in entry
            assert entry["peak_total_bits"] is not None
