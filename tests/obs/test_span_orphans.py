"""SpanTracker orphan detection under crash/recover schedules.

A span opened by a process that crashes mid-phase must be *reported* —
as a ``crash_orphans`` entry at crash time, and as an open span if
never legitimately ended — not silently dropped.
"""

from repro.faults.campaign import FaultConfig, run_chaos_workload
from repro.obs.recorder import SimObserver
from repro.obs.spans import NullSpanTracker, SpanTracker
from repro.registers.catalog import build_client_system


class TestNoteCrash:
    def test_open_spans_become_crash_orphans(self):
        spans = SpanTracker()
        spans.begin("w000", "op/write", 10, op_id=0)
        spans.begin("w000", "write/query", 12)
        orphans = spans.note_crash("w000", 20)
        assert [s.name for s in orphans] == ["op/write", "write/query"]
        assert spans.crash_orphans == [
            {"owner": "w000", "name": "op/write", "span_id": 0,
             "crash_step": 20},
            {"owner": "w000", "name": "write/query", "span_id": 1,
             "crash_step": 20},
        ]

    def test_spans_stay_open_for_recovery(self):
        # The spans are *not* force-closed: a recovered process may
        # legitimately end them later, and then they are no longer
        # counted as open even though the orphan record remains.
        spans = SpanTracker()
        spans.begin("s000", "server/sync", 5)
        spans.note_crash("s000", 8)
        assert [s.name for s in spans.open_spans()] == ["server/sync"]
        ended = spans.end("s000", "server/sync", 30)
        assert ended is not None and ended.duration_steps == 25
        assert spans.open_spans() == []
        assert len(spans.crash_orphans) == 1

    def test_crash_with_nothing_open_is_quiet(self):
        spans = SpanTracker()
        assert spans.note_crash("s000", 3) == []
        assert spans.crash_orphans == []

    def test_null_tracker_contract(self):
        null = NullSpanTracker()
        assert null.note_crash("s000", 3) == []
        assert null.crash_orphans == []


class TestUnderChaosSchedule:
    def test_crash_recover_schedule_records_orphans(self):
        # fault_target_count=1 staggers crash/recover rounds over one
        # server; whatever that server had open at each crash must be
        # visible as a crash orphan.
        handle = build_client_system("abd", 5, 1, 6)
        observer = SimObserver()
        handle.world.obs = observer
        config = FaultConfig(
            name="crash-recover", seed=0,
            crash_recovery=True, fault_target_count=1,
        )
        result = run_chaos_workload(handle, config, num_ops=8, max_ticks=4000)
        assert result.crashes > 0
        crashed = {
            a.src for a in handle.world.trace if a.kind == "crash"
        }
        for record in observer.spans.crash_orphans:
            assert record["owner"] in crashed
        # The telemetry summary surfaces the counts (never drops them).
        orphans = result.telemetry["phase_orphans"]
        assert orphans["crash_orphans"] == len(observer.spans.crash_orphans)

    def test_mid_phase_crash_is_reported(self):
        # Crash a writer while its op/write span is open: the span
        # tracker must report it rather than silently losing the phase.
        handle = build_client_system("abd", 3, 1, 4)
        observer = SimObserver()
        world = handle.world
        world.obs = observer
        wid = handle.writer_ids[0]
        world.invoke_write(wid, 1)
        world.step()
        world.crash(wid)
        assert any(
            rec["owner"] == wid and rec["name"] == "op/write"
            for rec in observer.spans.crash_orphans
        )
        assert any(
            s.owner == wid and s.is_open for s in observer.spans.spans
        )
