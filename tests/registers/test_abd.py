"""Tests for the MWMR ABD algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.atomicity import check_atomicity
from repro.errors import SimulationError
from repro.registers.abd import ABDServer, build_abd_system
from repro.registers.tags import INITIAL_TAG, Tag
from repro.sim.events import Message
from repro.sim.network import World
from repro.sim.process import ProcessContext
from repro.sim.scheduler import RandomScheduler


class TestServer:
    def make(self):
        w = World()
        server = w.add_process(ABDServer("s0", value_bits=8))
        client = w.add_process(ABDServer("c0", value_bits=8))  # stand-in peer
        return w, server

    def test_initial_state(self):
        _, s = self.make()
        assert s.tag == INITIAL_TAG
        assert s.value == 0

    def test_put_advances_tag(self):
        w, s = self.make()
        ctx = ProcessContext(w, "s0")
        s.on_message(ctx, "c0", Message.make("put", ref=("c0", 1), tag=(1, "w"), value=9))
        assert s.value == 9
        assert s.tag == Tag(1, "w")

    def test_stale_put_ignored(self):
        w, s = self.make()
        ctx = ProcessContext(w, "s0")
        s.on_message(ctx, "c0", Message.make("put", ref=("c0", 1), tag=(2, "w"), value=9))
        s.on_message(ctx, "c0", Message.make("put", ref=("c0", 2), tag=(1, "w"), value=5))
        assert s.value == 9

    def test_equal_tag_put_ignored(self):
        w, s = self.make()
        ctx = ProcessContext(w, "s0")
        s.on_message(ctx, "c0", Message.make("put", ref=("c0", 1), tag=(1, "w"), value=9))
        s.on_message(ctx, "c0", Message.make("put", ref=("c0", 2), tag=(1, "w"), value=5))
        assert s.value == 9

    def test_get_replies_current(self):
        w, s = self.make()
        ctx = ProcessContext(w, "s0")
        s.on_message(ctx, "c0", Message.make("get", ref=("c0", 1)))
        reply = w.channel("s0", "c0").peek()
        assert reply.kind == "get-ack"
        assert reply.get("value") == 0

    def test_unknown_message_rejected(self):
        w, s = self.make()
        with pytest.raises(SimulationError):
            s.on_message(ProcessContext(w, "s0"), "c0", Message.make("bogus"))

    def test_storage_bits(self):
        _, s = self.make()
        assert s.storage_bits() == 8.0
        assert s.storage_bits(count_metadata=True) > 8.0


class TestSingleClientBehaviour:
    def test_read_before_any_write_returns_initial(self):
        handle = build_abd_system(n=3, f=1, value_bits=8, initial_value=7)
        assert handle.read().value == 7

    def test_read_your_write(self):
        handle = build_abd_system(n=3, f=1, value_bits=8)
        handle.write(42)
        assert handle.read().value == 42

    def test_sequence_of_writes(self):
        handle = build_abd_system(n=3, f=1, value_bits=8)
        for v in [1, 2, 3, 200]:
            handle.write(v)
            assert handle.read().value == v

    def test_write_survives_f_crashes_after(self):
        handle = build_abd_system(n=5, f=2, value_bits=8)
        handle.write(9)
        handle.crash_servers([0, 1])
        assert handle.read().value == 9

    def test_multiple_readers(self):
        handle = build_abd_system(n=3, f=1, value_bits=8, num_readers=3)
        handle.write(5)
        for reader in handle.reader_ids:
            assert handle.read(reader=reader).value == 5


class TestMultiWriter:
    def test_writers_tags_do_not_collide(self):
        handle = build_abd_system(n=3, f=1, value_bits=8, num_writers=2)
        handle.write(1, writer=handle.writer_ids[0])
        handle.write(2, writer=handle.writer_ids[1])
        assert handle.read().value == 2

    def test_later_writer_sees_earlier_tag(self):
        handle = build_abd_system(n=3, f=1, value_bits=8, num_writers=2)
        handle.write(1, writer=handle.writer_ids[0])
        handle.write(2, writer=handle.writer_ids[1])
        handle.write(3, writer=handle.writer_ids[0])
        assert handle.read().value == 3

    def test_concurrent_writes_linearizable(self):
        handle = build_abd_system(
            n=3, f=1, value_bits=8, num_writers=2, num_readers=1
        )
        w = handle.world
        op_a = w.invoke_write(handle.writer_ids[0], 10)
        op_b = w.invoke_write(handle.writer_ids[1], 20)
        w.run_until(lambda world: op_a.is_complete and op_b.is_complete)
        handle.read()
        assert check_atomicity(w.operations).ok


class TestRandomSchedules:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_atomic_under_random_scheduling(self, seed):
        handle = build_abd_system(
            n=3,
            f=1,
            value_bits=4,
            num_writers=2,
            num_readers=2,
            world=World(RandomScheduler(seed)),
        )
        w = handle.world
        ops = [
            w.invoke_write(handle.writer_ids[0], 3),
            w.invoke_write(handle.writer_ids[1], 7),
            w.invoke_read(handle.reader_ids[0]),
            w.invoke_read(handle.reader_ids[1]),
        ]
        w.run_until(lambda world: all(o.is_complete for o in ops))
        assert check_atomicity(w.operations).ok
