"""Tests for Coded Atomic Storage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.atomicity import check_atomicity
from repro.errors import ConfigurationError
from repro.registers.cas import (
    build_cas_system,
    cas_code_for,
    cas_quorum_size,
)
from repro.sim.network import World
from repro.sim.scheduler import RandomScheduler


class TestConfiguration:
    def test_default_k(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        assert handle.params["k"] == 3

    def test_quorum_formula(self):
        assert cas_quorum_size(5, 3) == 4
        assert cas_quorum_size(21, 1) == 11

    def test_quorums_intersect_in_k(self):
        for n, k in [(5, 3), (7, 1), (9, 5)]:
            q = cas_quorum_size(n, k)
            assert 2 * q - n >= k

    def test_k_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            build_cas_system(n=5, f=1, k=4)

    def test_optimistic_allows_larger_k(self):
        handle = build_cas_system(n=5, f=1, k=4, optimistic=True)
        assert handle.params["k"] == 4

    def test_optimistic_still_bounded(self):
        with pytest.raises(ConfigurationError):
            build_cas_system(n=5, f=1, k=5, optimistic=True)

    def test_code_symbol_fits_n(self):
        code = cas_code_for(21, 11, 55)
        assert code.field.order >= 21
        assert code.n == 21


class TestBasicOperation:
    def test_initial_read(self):
        handle = build_cas_system(n=5, f=1, value_bits=12, initial_value=7)
        assert handle.read().value == 7

    def test_write_then_read(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(3000)
        assert handle.read().value == 3000

    def test_many_writes(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        for v in [1, 100, 4095, 0, 2048]:
            handle.write(v)
            assert handle.read().value == v

    def test_liveness_under_f_failures(self):
        handle = build_cas_system(n=7, f=2, value_bits=12)
        handle.crash_servers([5, 6])
        handle.write(99)
        assert handle.read().value == 99

    def test_no_server_stores_full_value(self):
        """The defining property of erasure-coded storage."""
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(4000)
        sym = handle.params["symbol_bits"]
        assert sym < 12
        for pid in handle.server_ids:
            # server bits = versions * symbol_bits, each below value_bits
            assert handle.world.process(pid).code.symbol_bits == sym


class TestStorageGrowth:
    def test_storage_grows_with_versions(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        baseline = handle.normalized_total_storage()
        handle.write(1)
        handle.write(2)
        assert handle.normalized_total_storage() > baseline

    def test_stored_version_count(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(1)
        handle.write(2)
        for pid in handle.server_ids:
            assert handle.world.process(pid).stored_version_count() == 3  # t0+2

    def test_normalized_storage_formula(self):
        """Without GC, total = (versions) * n * sym/value_bits."""
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(1)
        expected = 2 * 5 * handle.params["symbol_bits"] / 12
        assert abs(handle.normalized_total_storage() - expected) < 1e-9


class TestConcurrency:
    def test_two_concurrent_writers_atomic(self):
        handle = build_cas_system(
            n=5, f=1, value_bits=12, num_writers=2, num_readers=1
        )
        w = handle.world
        a = w.invoke_write(handle.writer_ids[0], 111)
        b = w.invoke_write(handle.writer_ids[1], 222)
        w.run_until(lambda world: a.is_complete and b.is_complete)
        handle.read()
        assert check_atomicity(w.operations).ok

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_atomic_under_random_schedules(self, seed):
        handle = build_cas_system(
            n=5,
            f=1,
            value_bits=12,
            num_writers=2,
            num_readers=2,
            world=World(RandomScheduler(seed)),
        )
        w = handle.world
        ops = [
            w.invoke_write(handle.writer_ids[0], 10),
            w.invoke_write(handle.writer_ids[1], 20),
            w.invoke_read(handle.reader_ids[0]),
            w.invoke_read(handle.reader_ids[1]),
        ]
        w.run_until(lambda world: all(o.is_complete for o in ops))
        assert check_atomicity(w.operations).ok

    def test_read_concurrent_with_write_sees_old_or_new(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(10)
        w = handle.world
        w.invoke_write(handle.writer_ids[0], 20)
        read = w.invoke_read(handle.reader_ids[0])
        w.run_until(lambda world: not world.pending_operations())
        assert read.value in (10, 20)


class TestServerDigest:
    def test_digest_changes_with_store(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        before = handle.world.process("s000").state_digest()
        handle.write(5)
        after = handle.world.process("s000").state_digest()
        assert before != after

    def test_digest_hashable(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        hash(handle.world.process("s000").state_digest())
