"""Tests for single-writer ABD."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.regularity import check_regular
from repro.errors import SimulationError
from repro.registers.abd_swmr import build_swmr_abd_system
from repro.sim.network import World
from repro.sim.scheduler import RandomScheduler


class TestBasics:
    def test_write_then_read(self):
        handle = build_swmr_abd_system(n=3, f=1, value_bits=8)
        handle.write(42)
        assert handle.read().value == 42

    def test_one_phase_write_message_count(self):
        """A SWMR write sends n messages and waits for a quorum of acks."""
        handle = build_swmr_abd_system(n=3, f=1, value_bits=8)
        before = handle.world.step_count
        handle.write(5)
        deliveries = [
            a for a in handle.world.trace
            if a.kind == "deliver" and a.step > before
        ]
        # 3 puts + at least quorum(2) acks, at most 3 acks; never a "get"
        assert all(a.info in ("put", "put-ack") for a in deliveries)

    def test_writer_cannot_read(self):
        handle = build_swmr_abd_system(n=3, f=1, value_bits=8)
        with pytest.raises(SimulationError):
            handle.world.invoke_read(handle.writer_ids[0])

    def test_exactly_one_writer(self):
        handle = build_swmr_abd_system(n=3, f=1, value_bits=8)
        assert len(handle.writer_ids) == 1

    def test_liveness_under_f_failures(self):
        handle = build_swmr_abd_system(n=5, f=2, value_bits=8)
        handle.crash_servers([3, 4])
        handle.write(9)
        assert handle.read().value == 9


class TestRegularity:
    def test_sequential_history_regular(self):
        handle = build_swmr_abd_system(n=3, f=1, value_bits=4)
        for v in (1, 2, 3):
            handle.write(v)
            handle.read()
        assert check_regular(handle.world.operations).ok

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_regular_under_random_schedules(self, seed):
        handle = build_swmr_abd_system(
            n=3,
            f=1,
            value_bits=4,
            num_readers=2,
            world=World(RandomScheduler(seed)),
        )
        w = handle.world
        write_op = w.invoke_write(handle.writer_ids[0], 9)
        read_a = w.invoke_read(handle.reader_ids[0])
        read_b = w.invoke_read(handle.reader_ids[1])
        w.run_until(
            lambda world: write_op.is_complete
            and read_a.is_complete
            and read_b.is_complete
        )
        assert check_regular(w.operations).ok

    def test_reads_concurrent_with_write_return_old_or_new(self):
        handle = build_swmr_abd_system(n=3, f=1, value_bits=4)
        handle.write(1)
        w = handle.world
        w.invoke_write(handle.writer_ids[0], 2)
        read = w.invoke_read(handle.reader_ids[0])
        w.run_until(lambda world: not world.pending_operations())
        assert read.value in (1, 2)


class TestAtomicVariant:
    def test_write_back_upgrades_to_atomic(self):
        from repro.consistency.atomicity import check_atomicity

        handle = build_swmr_abd_system(
            n=3, f=1, value_bits=4, num_readers=2, read_write_back=True
        )
        handle.write(1)
        w = handle.world
        w.invoke_write(handle.writer_ids[0], 2)
        r1 = w.invoke_read(handle.reader_ids[0])
        w.run_until(lambda world: r1.is_complete)
        r2 = w.invoke_read(handle.reader_ids[1])
        w.run_until(lambda world: not world.pending_operations())
        assert check_atomicity(w.operations).ok

    def test_params_recorded(self):
        handle = build_swmr_abd_system(n=3, f=1, read_write_back=True)
        assert handle.params["read_write_back"] is True
        assert handle.algorithm == "swmr-abd"
