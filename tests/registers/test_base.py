"""Tests for register system scaffolding."""

import pytest

from repro.errors import ConfigurationError
from repro.registers.abd import build_abd_system
from repro.registers.base import quorum_size, reader_id, server_id, writer_id


class TestQuorumSize:
    def test_majority_configs(self):
        assert quorum_size(5, 2) == 3
        assert quorum_size(3, 1) == 2
        assert quorum_size(21, 10) == 11

    def test_intersecting(self):
        for n, f in [(3, 1), (5, 2), (7, 3), (9, 2)]:
            q = quorum_size(n, f)
            assert 2 * q > n  # safety: any two quorums intersect
            assert q <= n - f  # liveness: a live quorum exists

    def test_too_many_failures_rejected(self):
        with pytest.raises(ConfigurationError):
            quorum_size(4, 2)

    def test_zero_failures(self):
        assert quorum_size(3, 0) == 3


class TestIds:
    def test_sortable_ids(self):
        ids = [server_id(i) for i in (0, 2, 10, 100)]
        assert ids == sorted(ids)

    def test_disjoint_namespaces(self):
        assert server_id(0) != writer_id(0) != reader_id(0)


class TestSystemHandle:
    def test_value_space_size(self):
        handle = build_abd_system(n=3, f=1, value_bits=6)
        assert handle.value_space_size == 64

    def test_write_read_facade(self):
        handle = build_abd_system(n=3, f=1, value_bits=6)
        record = handle.write(11)
        assert record.is_complete
        assert handle.read().value == 11

    def test_crash_servers_by_index(self):
        handle = build_abd_system(n=3, f=1, value_bits=6)
        handle.crash_servers([2])
        assert handle.surviving_server_ids() == ["s000", "s001"]

    def test_trace_capture(self):
        handle = build_abd_system(n=3, f=1, value_bits=6)
        handle.write(1)
        trace = handle.trace()
        assert len(trace.writes()) == 1

    def test_storage_bits_vector_length(self):
        handle = build_abd_system(n=4, f=1, value_bits=6)
        assert len(handle.server_storage_bits()) == 4

    def test_normalized_storage_abd_is_n(self):
        handle = build_abd_system(n=4, f=1, value_bits=6)
        assert handle.normalized_total_storage() == 4.0
        assert handle.normalized_max_storage() == 1.0

    def test_metadata_counting_increases_bits(self):
        handle = build_abd_system(n=4, f=1, value_bits=6)
        assert handle.total_storage_bits(True) > handle.total_storage_bits(False)


class TestValidation:
    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            build_abd_system(n=0, f=0)
        with pytest.raises(ConfigurationError):
            build_abd_system(n=3, f=3)
        with pytest.raises(ConfigurationError):
            build_abd_system(n=3, f=1, value_bits=0)
        with pytest.raises(ConfigurationError):
            build_abd_system(n=3, f=1, num_writers=0)
        with pytest.raises(ConfigurationError):
            build_abd_system(n=3, f=1, num_readers=0)
