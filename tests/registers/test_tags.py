"""Tests for version tags."""

from hypothesis import given, strategies as st

from repro.registers.tags import INITIAL_TAG, Tag

tag_st = st.builds(
    Tag,
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(["", "w0", "w1", "w2"]),
)


class TestOrdering:
    def test_seq_dominates(self):
        assert Tag(1, "z") < Tag(2, "a")

    def test_client_breaks_ties(self):
        assert Tag(1, "a") < Tag(1, "b")

    def test_initial_tag_minimal(self):
        assert INITIAL_TAG < Tag(1, "")
        assert INITIAL_TAG <= Tag(0, "")

    @given(tag_st, tag_st)
    def test_total_order(self, a, b):
        assert (a < b) or (b < a) or (a == b)

    @given(tag_st, tag_st, tag_st)
    def test_transitive(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(tag_st)
    def test_next_for_strictly_greater(self, t):
        for cid in ("w0", "w9"):
            assert t.next_for(cid) > t

    def test_concurrent_writers_distinct_tags(self):
        base = Tag(3, "w0")
        assert base.next_for("w1") != base.next_for("w2")


class TestSerialization:
    @given(tag_st)
    def test_tuple_roundtrip(self, t):
        assert Tag.from_tuple(t.as_tuple()) == t

    @given(tag_st, tag_st)
    def test_tuple_order_matches(self, a, b):
        assert (a < b) == (a.as_tuple() < b.as_tuple())

    def test_hashable(self):
        assert len({Tag(1, "a"), Tag(1, "a"), Tag(2, "a")}) == 2

    def test_frozen(self):
        import dataclasses

        t = Tag(1, "a")
        try:
            t.seq = 2
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised
