"""Hand-scheduled tests for CAS's rarer protocol paths.

These paths need precise message timing that fair/random schedules
rarely produce: the garbage-collection retry (a reader chasing a tag
that servers pruned meanwhile) and the pending-reader forwarding (a
reader asking for a finalized tag whose coded element has not yet
arrived at a server).
"""

from repro.registers.cas import build_cas_system
from repro.registers.casgc import build_casgc_system


class TestGCRetryPath:
    def test_reader_retries_after_gc_and_returns_newer_value(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=0)
        w = handle.world
        reader = handle.reader_ids[0]
        servers = handle.server_ids

        handle.write(100)
        handle.write(200)
        w.deliver_all()

        # Reader queries and commits to the current max finalized tag...
        read_op = w.invoke_read(reader)
        for sid in servers:
            w.deliver(reader, sid)      # qf
        for sid in servers[:4]:          # quorum of qf-acks
            w.deliver(sid, reader)
        reader_proc = w.process(reader)
        assert reader_proc.phase == 2    # read-fin(tag of 200) now queued

        # ...but two more writes complete (with the reader's stalled
        # read-fin messages held back) and GC prunes that tag.
        handle.write(300, channel_filter=_not_from(reader))
        handle.write(400, channel_filter=_not_from(reader))
        w.deliver_all(_not_from(reader))
        for sid in servers:
            assert w.process(sid).gc_floor is not None

        # Delivering the stale read-fin now triggers read-gc and a retry.
        w.run_op_to_completion(read_op)
        assert read_op.value == 400
        assert reader_proc.retries >= 1

    def test_retry_counter_resets_between_reads(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=0)
        handle.write(5)
        handle.read()
        reader = handle.world.process(handle.reader_ids[0])
        handle.read()
        assert reader.retries == 0


class TestPendingReaderPath:
    def test_element_forwarded_when_pre_arrives_late(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        w = handle.world
        writer = handle.writer_ids[0]
        reader = handle.reader_ids[0]
        servers = handle.server_ids
        straggler = servers[4]

        handle.write(111)
        w.deliver_all()

        # Write 222: pre and fin reach servers 0..3; the straggler's
        # copies sit undelivered in its FIFO channel from the writer.
        write_op = w.invoke_write(writer, 222)
        for sid in servers:
            w.deliver(writer, sid)       # qf
        for sid in servers:
            w.deliver(sid, writer)       # qf-acks -> pre sent to all
        for sid in servers[:4]:
            w.deliver(writer, sid)       # pre to quorum only
        for sid in servers[:4]:
            w.deliver(sid, writer)       # pre-acks -> fin sent to all
        for sid in servers[:4]:
            w.deliver(writer, sid)       # fin to the quorum
        straggler_proc = w.process(straggler)
        assert (2, writer) not in straggler_proc.store

        # The reader learns tag (2, writer) from the quorum and asks the
        # straggler too, which knows nothing about it yet: parked.
        read_op = w.invoke_read(reader)
        for sid in servers:
            w.deliver(reader, sid)
        for sid in servers[1:]:          # qf quorum includes the straggler
            w.deliver(sid, reader)
        w.deliver(reader, straggler)     # read-fin at the straggler
        assert straggler_proc.pending_readers  # parked, no element yet

        # The late pre arrives; the straggler forwards the element.
        w.deliver(writer, straggler)
        assert not straggler_proc.pending_readers
        assert straggler_proc.store[(2, writer)][0] is not None

        w.run_op_to_completion(read_op)
        w.run_op_to_completion(write_op)
        assert read_op.value == 222


def _not_from(pid):
    from repro.sim.scheduler import ChannelFilter

    return ChannelFilter(lambda s, d: s != pid, f"not-from({pid})")
