"""Tests for CAS with garbage collection."""

import pytest

from repro.errors import ConfigurationError
from repro.registers.casgc import build_casgc_system


class TestGC:
    def test_gc_bounds_storage(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=0)
        for v in range(1, 10):
            handle.write(v)
        for pid in handle.server_ids:
            server = handle.world.process(pid)
            # keep <= gc_depth+1 finalized (+ possibly in-flight ones)
            assert server.stored_version_count() <= 2

    def test_gc_depth_one_keeps_two_finalized(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=1)
        for v in range(1, 8):
            handle.write(v)
        for pid in handle.server_ids:
            fins = [
                t
                for t, rec in handle.world.process(pid).store.items()
                if rec[1] == "fin"
            ]
            assert len(fins) <= 2

    def test_reads_still_correct_after_gc(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=0)
        for v in range(1, 12):
            handle.write(v)
        assert handle.read().value == 11

    def test_interleaved_reads_and_writes(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=1)
        for v in range(1, 8):
            handle.write(v)
            assert handle.read().value == v

    def test_gc_floor_advances(self):
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=0)
        for v in range(1, 6):
            handle.write(v)
        server = handle.world.process("s000")
        assert server.gc_floor is not None

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            build_casgc_system(n=5, f=1, gc_depth=-1)

    def test_algorithm_label(self):
        handle = build_casgc_system(n=5, f=1, gc_depth=0)
        assert handle.algorithm == "casgc"

    def test_storage_flat_in_total_writes(self):
        """After GC the cost depends on delta, not on history length."""
        handle = build_casgc_system(n=5, f=1, value_bits=12, gc_depth=0)
        handle.write(1)
        cost_after_one = handle.normalized_total_storage()
        for v in range(2, 20):
            handle.write(v)
        assert handle.normalized_total_storage() <= cost_after_one + 1e-9

    def test_liveness_under_failures(self):
        handle = build_casgc_system(n=7, f=2, value_bits=12, gc_depth=0)
        handle.crash_servers([5, 6])
        for v in (1, 2, 3):
            handle.write(v)
        assert handle.read().value == 3
