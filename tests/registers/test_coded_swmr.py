"""Tests for the one-phase coded SWMR regular register."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.atomicity import check_atomicity
from repro.consistency.regularity import check_regular
from repro.errors import ConfigurationError
from repro.registers.coded_swmr import build_coded_swmr_system
from repro.sim.network import World
from repro.sim.scheduler import RandomScheduler


class TestBasics:
    def test_initial_read(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12, initial_value=9)
        assert handle.read().value == 9

    def test_write_then_read(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        handle.write(3000)
        assert handle.read().value == 3000

    def test_sequence(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        for v in (1, 4095, 0, 77):
            handle.write(v)
            assert handle.read().value == v

    def test_liveness_under_failures(self):
        handle = build_coded_swmr_system(n=7, f=2, value_bits=12)
        handle.crash_servers([5, 6])
        handle.write(55)
        assert handle.read().value == 55

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            build_coded_swmr_system(n=5, f=1, k=4)
        handle = build_coded_swmr_system(n=5, f=1, k=4, optimistic=True)
        assert handle.params["k"] == 4


class TestStorage:
    def test_versions_accumulate(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        for v in (1, 2, 3):
            handle.write(v)
        handle.world.deliver_all()
        for pid in handle.server_ids:
            assert handle.world.process(pid).stored_version_count() == 4

    def test_per_server_below_full_value(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        handle.write(1)
        assert handle.params["symbol_bits"] < 12

    def test_normalized_growth_rate(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        costs = []
        for v in (1, 2, 3):
            handle.write(v)
            handle.world.deliver_all()
            costs.append(handle.normalized_total_storage())
        slopes = {round(b - a, 9) for a, b in zip(costs, costs[1:])}
        expected = 5 * handle.params["symbol_bits"] / 12
        assert slopes == {round(expected, 9)}


class TestRegularity:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_regular_under_random_schedules(self, seed):
        handle = build_coded_swmr_system(
            n=5, f=1, value_bits=8, num_readers=2,
            world=World(RandomScheduler(seed)),
        )
        w = handle.world
        handle.write(10)
        w.invoke_write(handle.writer_ids[0], 20)
        r1 = w.invoke_read(handle.reader_ids[0])
        r2 = w.invoke_read(handle.reader_ids[1])
        w.run_until(lambda world: not world.pending_operations())
        assert check_regular(w.operations).ok

    def test_new_old_inversion_possible(self):
        """The register is regular but NOT atomic.

        Constructed schedule: write(2)'s symbols reach exactly k=3
        servers {0,1,2}; read1's quorum {0,1,2,3} decodes the new value
        while read2's quorum {1,2,3,4} sees only 2 < k symbols of it
        and falls back to the old one — a new/old inversion.
        """
        handle = build_coded_swmr_system(n=5, f=1, value_bits=8, num_readers=2)
        assert handle.params["k"] == 3 and handle.params["quorum"] == 4
        w = handle.world
        writer = handle.writer_ids[0]
        s = handle.server_ids
        handle.write(1)
        w.deliver_all()

        w.invoke_write(writer, 2)
        for i in (0, 1, 2):  # new symbols land at exactly k servers
            w.deliver(writer, s[i])

        r1 = w.invoke_read(handle.reader_ids[0])
        for i in (0, 1, 2, 3):
            w.deliver(handle.reader_ids[0], s[i])
            w.deliver(s[i], handle.reader_ids[0])
        assert r1.is_complete and r1.value == 2

        r2 = w.invoke_read(handle.reader_ids[1])
        for i in (1, 2, 3, 4):
            w.deliver(handle.reader_ids[1], s[i])
            w.deliver(s[i], handle.reader_ids[1])
        assert r2.is_complete and r2.value == 1

        w.run_until(lambda world: not world.pending_operations())
        assert check_regular(w.operations).ok
        assert not check_atomicity(w.operations).ok
