"""Partial-order reduction preserves every exploration verdict.

The sleep-set reduction (``por=True``) may only skip interleavings that
permute commuting server deliveries, so against the full exploration it
must report the identical outcome: same ``ok``, same ``exhausted``,
same number of distinct maximal executions and incomplete terminals,
and the same violating histories when a counterexample exists.
"""

import pytest

from repro.consistency.atomicity import check_atomicity
from repro.faults.adversary import AdversaryConfig, ChannelAdversary
from repro.registers.abd_swmr import build_swmr_abd_system
from repro.verification.explore import ScheduleExplorer

from tests.verification.test_explore import (
    INVERSION_FOLLOWUPS,
    inversion_prefix_world,
    swmr_write_read_world,
)


def _atomic(ops) -> bool:
    return check_atomicity(ops).ok


class TestPorEquivalence:
    def test_exhaustive_verdict_and_counts_match(self):
        """Full vs reduced exploration of the write||read space."""
        full = ScheduleExplorer(checker=_atomic, max_states=50_000).explore(
            swmr_write_read_world()
        )
        reduced = ScheduleExplorer(
            checker=_atomic, max_states=50_000, por=True
        ).explore(swmr_write_read_world())
        assert full.exhausted and reduced.exhausted
        assert full.ok and reduced.ok
        assert full.executions_checked == reduced.executions_checked
        assert full.incomplete_terminals == reduced.incomplete_terminals

    def test_violation_still_found_with_por(self):
        """The new/old inversion counterexample survives the reduction."""
        for por in (False, True):
            explorer = ScheduleExplorer(
                checker=_atomic,
                followups=INVERSION_FOLLOWUPS,
                stop_at_first_violation=True,
                max_states=200_000,
                por=por,
            )
            result = explorer.explore(inversion_prefix_world())
            assert result.violations, f"no violation with por={por}"
            _, ops = result.violations[0]
            reads = [op for op in ops if op.kind == "read"]
            assert [r.value for r in reads] == [2, 1]

    def test_incomplete_terminals_counted_identically(self):
        """Crash-starved executions quiesce with pending operations."""

        def starved_world():
            handle = build_swmr_abd_system(
                n=3, f=1, value_bits=2, num_readers=1
            )
            world = handle.world
            world.crash("s001")
            world.crash("s002")
            world.invoke_write(handle.writer_ids[0], 1)
            return world

        full = ScheduleExplorer(checker=_atomic, max_states=10_000).explore(
            starved_world()
        )
        reduced = ScheduleExplorer(
            checker=_atomic, max_states=10_000, por=True
        ).explore(starved_world())
        assert full.exhausted and reduced.exhausted
        assert full.incomplete_terminals == reduced.incomplete_terminals > 0
        assert full.executions_checked == reduced.executions_checked

    def test_por_auto_disabled_under_adversary(self):
        """Random per-delivery fates break commutation; POR must yield."""

        def adversarial_world():
            handle = build_swmr_abd_system(
                n=3, f=1, value_bits=2, num_readers=1
            )
            world = handle.world
            world.adversary = ChannelAdversary(
                AdversaryConfig(duplicate_probability=0.3, max_duplicates=2),
                seed=9,
            )
            world.invoke_write(handle.writer_ids[0], 1)
            return world

        full = ScheduleExplorer(checker=_atomic, max_states=100_000).explore(
            adversarial_world()
        )
        reduced = ScheduleExplorer(
            checker=_atomic, max_states=100_000, por=True
        ).explore(adversarial_world())
        # With POR auto-disabled the two searches are the same search.
        assert full.states_visited == reduced.states_visited
        assert full.executions_checked == reduced.executions_checked
        assert full.ok == reduced.ok
