"""Tests for cross-server protocol invariants."""

import pytest

from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.registers.casgc import build_casgc_system
from repro.registers.coded_swmr import build_coded_swmr_system
from repro.verification.invariants import (
    check_abd_invariants,
    check_cas_invariants,
    check_coded_invariants,
    check_invariants_during,
    invariant_checker_for,
)
from repro.workload.patterns import concurrent_writes_driver


class TestCleanRuns:
    def test_abd_workload_holds_invariants_every_step(self):
        handle = build_abd_system(n=5, f=2, value_bits=4, num_writers=3)
        steps = check_invariants_during(
            handle, concurrent_writes_driver([1, 2, 3])
        )
        assert steps > 0
        assert check_abd_invariants(handle) == []

    def test_cas_workload_holds_invariants_every_step(self):
        handle = build_cas_system(n=5, f=1, value_bits=12, num_writers=2)
        check_invariants_during(handle, concurrent_writes_driver([10, 20]))
        assert check_cas_invariants(handle) == []

    def test_casgc_workload(self):
        handle = build_casgc_system(
            n=5, f=1, value_bits=12, gc_depth=1, num_writers=2
        )
        check_invariants_during(handle, concurrent_writes_driver([10, 20]))

    def test_coded_swmr_workload(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        handle.write(100)
        handle.write(200)
        handle.world.deliver_all()
        assert check_coded_invariants(handle) == []

    def test_invariants_hold_under_crashes(self):
        handle = build_cas_system(n=7, f=2, value_bits=12)
        handle.write(5)
        handle.crash_servers([5, 6])
        handle.write(6)
        handle.world.deliver_all()
        assert check_cas_invariants(handle) == []


class TestViolationDetection:
    def test_abd_tag_disagreement_detected(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(5)
        # corrupt: one server holds a different value under the same tag
        handle.world.process("s001").value = 9
        violations = check_abd_invariants(handle)
        assert any("A1" in v for v in violations)

    def test_abd_unwritten_value_detected(self):
        from repro.registers.tags import Tag

        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(5)
        server = handle.world.process("s002")
        server.tag = Tag(9, "ghost")
        server.value = 13
        violations = check_abd_invariants(handle)
        assert any("A2" in v for v in violations)

    def test_cas_codeword_corruption_detected(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(5)
        handle.world.deliver_all()
        server = handle.world.process("s000")
        tag = max(server.store)  # the written tag
        server.store[tag][0] ^= 1  # flip a bit of the coded element
        violations = check_cas_invariants(handle)
        assert any("C1" in v for v in violations)

    def test_cas_unbacked_finalization_detected(self):
        from repro.registers.cas import FIN

        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.write(5)
        handle.world.deliver_all()
        # forge a finalized tag nobody has elements for
        server = handle.world.process("s000")
        server.store[(99, "w000")] = [None, FIN]
        violations = check_cas_invariants(handle)
        assert any("C2" in v for v in violations)

    def test_coded_corruption_detected(self):
        handle = build_coded_swmr_system(n=5, f=1, value_bits=12)
        handle.write(5)
        handle.world.deliver_all()
        server = handle.world.process("s000")
        tag = max(server.store)
        server.store[tag] ^= 1
        violations = check_coded_invariants(handle)
        assert any("S1" in v for v in violations)

    def test_check_during_raises_on_violation(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)

        def corrupting_drive(h):
            h.world.invoke_write(h.writer_ids[0], 3)
            # pre-plant disagreement that the stepper will flag
            h.world.process("s000").value = 7
            h.world.process("s000").tag = h.world.process("s000").tag.next_for("x")
            h.world.process("s001").value = 8
            h.world.process("s001").tag = h.world.process("s001").tag.next_for("x")

        with pytest.raises(AssertionError, match="invariant violated"):
            check_invariants_during(handle, corrupting_drive)


class TestCheckerRegistry:
    def test_every_algorithm_has_checker(self):
        for build, kwargs in (
            (build_abd_system, dict(n=3, f=1)),
            (build_cas_system, dict(n=5, f=1)),
            (build_casgc_system, dict(n=5, f=1, gc_depth=0)),
            (build_coded_swmr_system, dict(n=5, f=1)),
        ):
            handle = build(**kwargs)
            assert callable(invariant_checker_for(handle))
