"""Tests for the exhaustive schedule explorer."""

import pytest

from repro.consistency.atomicity import check_atomicity
from repro.consistency.regularity import check_regular
from repro.registers.abd import build_abd_system
from repro.registers.abd_swmr import build_swmr_abd_system
from repro.verification.explore import (
    ScheduleExplorer,
    explore_all_schedules,
    replay_schedule,
)


def swmr_write_read_world():
    """One write concurrent with one read, from the initial state."""
    h = build_swmr_abd_system(n=3, f=1, value_bits=2, num_readers=1)
    w = h.world
    w.invoke_write(h.writer_ids[0], 1)
    w.invoke_read(h.reader_ids[0])
    return w


def inversion_prefix_world():
    """write(1) done; write(2) has landed at one server; read1 invoked."""
    h = build_swmr_abd_system(n=3, f=1, value_bits=2, num_readers=2)
    w = h.world
    h.write(1)
    w.deliver_all()
    w.invoke_write(h.writer_ids[0], 2)
    w.deliver(h.writer_ids[0], "s000")
    w.invoke_read(h.reader_ids[0])
    return w


INVERSION_FOLLOWUPS = [(2, lambda world: world.invoke_read("r001"))]


class TestExhaustivePositive:
    def test_swmr_write_read_atomic_and_regular_under_all_schedules(self):
        """Every interleaving of a write and a concurrent read is both
        atomic and regular (a single read cannot witness an inversion).

        This is exhaustive: ~10^4 states, ~700 maximal executions, the
        complete interleaving space of the configuration.
        """
        result = explore_all_schedules(
            swmr_write_read_world,
            checker=lambda ops: check_atomicity(ops).ok
            and check_regular(ops).ok,
            max_states=50_000,
        )
        assert result.exhausted
        assert result.ok
        assert result.executions_checked > 100
        assert result.incomplete_terminals == 0


class TestCounterexampleHunt:
    def test_inversion_found_mechanically(self):
        explorer = ScheduleExplorer(
            checker=lambda ops: check_atomicity(ops).ok,
            followups=INVERSION_FOLLOWUPS,
            stop_at_first_violation=True,
            max_states=200_000,
        )
        result = explorer.explore(inversion_prefix_world())
        assert result.violations
        path, ops = result.violations[0]
        reads = [op for op in ops if op.kind == "read"]
        assert [r.value for r in reads] == [2, 1]  # new then old

    def test_counterexample_replays(self):
        explorer = ScheduleExplorer(
            checker=lambda ops: check_atomicity(ops).ok,
            followups=INVERSION_FOLLOWUPS,
            stop_at_first_violation=True,
            max_states=200_000,
        )
        result = explorer.explore(inversion_prefix_world())
        path, ops = result.violations[0]

        def rebuild():
            world = inversion_prefix_world()
            world.record_trace = False
            # replay fires followups the way the explorer did
            for src, dst in path:
                ScheduleExplorer(
                    followups=INVERSION_FOLLOWUPS
                )._fire_followups(world, 3)
                world.deliver(src, dst)
            ScheduleExplorer(
                followups=INVERSION_FOLLOWUPS
            )._fire_followups(world, 3)
            return world

        replayed = rebuild()
        replay_reads = [
            op for op in replayed.operations if op.kind == "read"
        ]
        assert [r.value for r in replay_reads] == [2, 1]
        assert not check_atomicity(replayed.operations).ok


class TestBudgets:
    def test_max_states_marks_not_exhausted(self):
        result = explore_all_schedules(swmr_write_read_world, max_states=50)
        assert not result.exhausted

    def test_incomplete_terminals_counted(self):
        """With 2 of 3 servers crashed, the write can never complete."""

        def stuck_world():
            h = build_abd_system(n=3, f=1, value_bits=2)
            w = h.world
            w.crash("s001")
            w.crash("s002")
            w.invoke_write(h.writer_ids[0], 1)
            return w

        result = explore_all_schedules(
            stuck_world, checker=lambda ops: True, max_states=10_000
        )
        assert result.exhausted
        assert result.incomplete_terminals == result.executions_checked > 0


class TestFollowups:
    def test_followup_fires_after_trigger(self):
        fired_worlds = []

        def follow(world):
            fired_worlds.append(world.step_count)
            world.invoke_read("r000")

        def one_write():
            h = build_swmr_abd_system(n=3, f=1, value_bits=2)
            h.world.invoke_write(h.writer_ids[0], 1)
            return h.world

        explorer = ScheduleExplorer(
            checker=lambda ops: check_regular(ops).ok,
            followups=[(0, follow)],
            max_states=100_000,
        )
        result = explorer.explore(one_write())
        assert result.exhausted and result.ok
        assert fired_worlds  # the read really ran in explored branches
        # terminal executions contain both operations, completed
        assert result.incomplete_terminals == 0
