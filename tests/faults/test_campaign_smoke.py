"""CI smoke profile of the chaos campaign.

A deliberately small sweep (one seed, N=5, f=1, few ops) of the same
grid ``make chaos`` runs in full, so every fault-injection path —
drops, duplication, reordering, partitions (healing and permanent),
crash-recovery, over-budget crashes — is exercised on every PR.
"""

import pytest

from repro.faults.campaign import (
    CAMPAIGN_ALGORITHMS,
    FAULT_SHAPES,
    FaultConfig,
    generate_fault_configs,
    run_campaign,
    run_chaos_workload,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_report():
    return run_campaign(
        algorithms=("abd", "cas", "casgc"),
        n=5,
        f=1,
        value_bits=6,
        seeds=[0],
        num_ops=6,
    )


class TestCampaignSmoke:
    def test_campaign_passes(self, smoke_report):
        assert smoke_report.passed, smoke_report.format()

    def test_safety_holds_under_every_fault_mix(self, smoke_report):
        assert all(r.safety_ok for r in smoke_report.results)

    def test_liveness_within_budget(self, smoke_report):
        for r in smoke_report.results:
            if r.config.expect_liveness:
                assert r.live, f"{r.algorithm}/{r.config.label()}: {r.verdict()}"

    def test_no_silent_hangs(self, smoke_report):
        for r in smoke_report.results:
            if not r.live:
                assert r.diagnosis is not None, (
                    f"{r.algorithm}/{r.config.label()} hung without diagnosis"
                )

    def test_adversarial_shapes_actually_injected(self, smoke_report):
        by_name = {}
        for r in smoke_report.results:
            stats = by_name.setdefault(r.config.name, {"drops": 0, "duplicates": 0,
                                                       "reorders": 0, "partitions": 0})
            for key in stats:
                stats[key] += r.fault_stats.get(key, 0)
        assert by_name["drops"]["drops"] > 0
        assert by_name["dups"]["duplicates"] > 0
        assert by_name["reorder"]["reorders"] > 0
        assert by_name["partition-heal"]["partitions"] > 0
        crashes = sum(r.crashes for r in smoke_report.results
                      if r.config.name == "crash-recover")
        recoveries = sum(r.recoveries for r in smoke_report.results
                         if r.config.name == "crash-recover")
        assert crashes > 0 and recoveries > 0

    def test_permanent_partition_and_over_budget_get_diagnosed(self, smoke_report):
        stalled = [r for r in smoke_report.results if not r.live]
        assert stalled, "expected at least one diagnosed stall in the grid"
        assert all(
            not r.config.expect_liveness for r in stalled
        ), "a within-budget run stalled"
        verdicts = {r.diagnosis.verdict for r in stalled}
        assert verdicts <= {
            "partition-isolated",
            "quorum-unavailable",
            "deadlock",
            "message-loss-starvation",
            "step-budget-exhausted",
        }

    def test_every_algorithm_covered(self, smoke_report):
        counts = smoke_report.configs_per_algorithm()
        assert set(counts) == set(CAMPAIGN_ALGORITHMS)
        assert all(count == len(FAULT_SHAPES) for count in counts.values())

    def test_report_roundtrip(self, smoke_report, tmp_path):
        path = tmp_path / "chaos.txt"
        write_report(smoke_report, str(path))
        text = path.read_text()
        assert "campaign PASSED" in text
        assert "partition-forever" in text


class TestConfigGeneration:
    def test_grid_size_meets_acceptance(self):
        # >= 20 seeded fault configurations per algorithm at 2 seeds.
        configs = generate_fault_configs(f=1, seeds=[0, 1])
        assert len(configs) >= 20
        assert len({c.label() for c in configs}) == len(configs)

    def test_budget_shapes_resolve_target_count(self):
        configs = generate_fault_configs(f=2, seeds=[0])
        drops = next(c for c in configs if c.name == "drops")
        assert drops.fault_target_count == 2

    def test_run_determinism(self):
        def run():
            handle = CAMPAIGN_ALGORITHMS["abd"](5, 1, 6)
            config = FaultConfig(
                name="det",
                seed=5,
                drop_probability=0.3,
                duplicate_probability=0.1,
                fault_target_count=1,
                crash_recovery=True,
            )
            result = run_chaos_workload(handle, config, num_ops=6)
            return (
                result.invoked,
                result.completed,
                result.steps,
                result.fault_stats,
                [(o.kind, o.value) for o in handle.world.operations],
            )

        assert run() == run()
