"""Tests for the liveness watchdog and deadlock detection."""

import pytest

from repro.errors import DeadlockDetectedError, StuckExecutionError
from repro.faults.adversary import ChannelAdversary, Partition
from repro.faults.watchdog import (
    LivenessWatchdog,
    VERDICT_BUDGET,
    VERDICT_DEADLOCK,
    VERDICT_PARTITION,
    VERDICT_QUORUM,
    diagnose_stall,
)
from repro.registers.abd import build_abd_system
from repro.sim.scheduler import ChannelFilter


class TestRunUntilDeadlock:
    def test_filter_blocking_everything_is_diagnosed(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        record = handle.world.invoke_write(handle.writer_ids[0], 1)
        freeze = ChannelFilter.freeze_process(handle.writer_ids[0])
        with pytest.raises(DeadlockDetectedError) as info:
            handle.world.run_op_to_completion(record, freeze)
        blocked = info.value.blocked_channels
        assert blocked  # names the channels holding messages
        assert all(handle.writer_ids[0] in key for key in blocked)

    def test_true_quiescence_still_plain_incomplete(self):
        from repro.errors import OperationIncompleteError

        handle = build_abd_system(n=3, f=1, value_bits=4)
        # Nothing in flight and the predicate can never hold.
        with pytest.raises(OperationIncompleteError) as info:
            handle.world.run_until(lambda w: False, max_steps=10)
        assert not isinstance(info.value, DeadlockDetectedError)

    def test_deadlock_is_an_operation_incomplete_error(self):
        # Valency probes rely on catching OperationIncompleteError.
        from repro.errors import OperationIncompleteError

        assert issubclass(DeadlockDetectedError, OperationIncompleteError)


class TestDiagnoseStall:
    def test_deadlock_verdict(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.world.invoke_write(handle.writer_ids[0], 1)
        freeze = ChannelFilter.freeze_process(handle.writer_ids[0])
        diagnosis = diagnose_stall(handle.world, channel_filter=freeze)
        assert diagnosis.verdict == VERDICT_DEADLOCK
        assert diagnosis.blocked_channels
        assert diagnosis.pending_ops

    def test_partition_verdict(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        adv = ChannelAdversary()
        world.adversary = adv
        world.invoke_write(handle.writer_ids[0], 1)
        adv.start_partition(Partition.isolate([handle.writer_ids[0]]))
        diagnosis = diagnose_stall(world, quorum=handle.params["quorum"])
        assert diagnosis.verdict == VERDICT_PARTITION
        assert "partition" in diagnosis.summary()

    def test_quorum_verdict(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.crash("s000")
        world.crash("s001")  # over budget: 1 live < quorum 2
        world.invoke_write(handle.writer_ids[0], 1)
        world.deliver_all()
        diagnosis = diagnose_stall(world, quorum=handle.params["quorum"])
        assert diagnosis.verdict == VERDICT_QUORUM
        assert len(diagnosis.live_servers) == 1

    def test_budget_verdict(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        diagnosis = diagnose_stall(handle.world, budget_exhausted=True)
        assert diagnosis.verdict == VERDICT_BUDGET


class TestLivenessWatchdog:
    def test_tick_budget_raises_structured_error(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        watchdog = LivenessWatchdog(handle.world, max_ticks=5)
        with pytest.raises(StuckExecutionError) as info:
            for _ in range(10):
                watchdog.tick()
        assert info.value.diagnosis.verdict == VERDICT_BUDGET

    def test_stalled_returns_exception_with_diagnosis(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.crash("s000")
        world.crash("s001")
        world.invoke_write(handle.writer_ids[0], 1)
        world.deliver_all()
        watchdog = LivenessWatchdog(world, quorum=handle.params["quorum"])
        error = watchdog.stalled()
        assert isinstance(error, StuckExecutionError)
        assert error.diagnosis.verdict == VERDICT_QUORUM
