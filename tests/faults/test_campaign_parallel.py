"""The campaign's byte-determinism and cache contracts.

Two acceptance properties of the parallel engine, checked end to end
against the real chaos campaign:

1. the report text and the ``repro.chaos/1`` JSON are byte-identical
   at any job count, and
2. a warm cache executes **zero** simulator runs while still
   reproducing the identical report (and a code-fingerprint change
   invalidates every entry).
"""

import json
import os

import pytest

import repro.faults.campaign as campaign_mod
from repro.cli import main as cli_main
from repro.faults.campaign import campaign_task_payload, run_campaign
from repro.parallel import FINGERPRINT_ENV, RunCache

#: Two seeds so the identity claim covers the whole seeded config grid.
PARAMS = dict(
    algorithms=("abd",), n=5, f=1, value_bits=6, seeds=[0, 1], num_ops=4
)


@pytest.fixture(scope="module")
def serial_report():
    return run_campaign(jobs=1, **PARAMS)


@pytest.fixture(scope="module")
def parallel_report():
    return run_campaign(jobs=4, **PARAMS)


class TestByteIdentity:
    def test_report_text_identical(self, serial_report, parallel_report):
        assert parallel_report.format() == serial_report.format()

    def test_json_identical(self, serial_report, parallel_report):
        def dump(report):
            return json.dumps(report.to_json_dict(), sort_keys=True, indent=2)

        assert dump(parallel_report) == dump(serial_report)

    def test_progress_lines_in_task_order(self):
        lines = {}
        for jobs in (1, 3):
            acc = []
            run_campaign(
                algorithms=("abd",), n=5, f=1, value_bits=6,
                seeds=[0], num_ops=3, jobs=jobs, progress=acc.append,
            )
            lines[jobs] = acc
        assert lines[3] == lines[1]
        assert len(lines[1]) > 0

    def test_chunk_size_never_affects_report(self, serial_report):
        for chunk in (1, 3, 0):
            report = run_campaign(jobs=4, chunk=chunk, **PARAMS)
            assert report.format() == serial_report.format(), chunk

    def test_cached_none_slots_never_reexecuted(self, tmp_path, monkeypatch):
        # Regression for the cache/slot ambiguity: with None used both
        # as "cache miss" and "slot unfilled", a fully warm cache where
        # lookups legitimately return data must not be confused with
        # pending slots.  The UNSET sentinel keeps them distinct; this
        # pins the observable consequence (zero re-executions) at the
        # campaign level even when only *some* slots are warm.
        small = dict(algorithms=("abd",), n=5, f=1, value_bits=6,
                     seeds=[0], num_ops=3)
        cache = RunCache(str(tmp_path))
        first = run_campaign(cache=cache, **small)

        executed = []
        real_task = campaign_mod._campaign_task

        def counting_task(payload):
            executed.append(payload["config"]["seed"])
            return real_task(payload)

        monkeypatch.setattr(campaign_mod, "_campaign_task", counting_task)
        # Evict every other entry so the warm pass mixes hits and misses.
        keys = [
            campaign_mod.campaign_task_key(
                campaign_mod.campaign_task_payload(
                    "abd", config, 5, 1, 6, 3, 60_000
                )
            )
            for config in campaign_mod.generate_fault_configs(1, [0])
        ]
        for key in keys[::2]:
            os.remove(cache._path(key))
        partial = RunCache(str(tmp_path))
        second = run_campaign(cache=partial, **small)
        assert second.format() == first.format()
        assert len(executed) == len(keys[::2])  # misses only, each once


class TestCliByteIdentity:
    """`repro chaos --json` byte-identity across job counts (chunked path)."""

    ARGS = [
        "chaos", "--algorithms", "abd", "--n", "5", "--f", "1",
        "--seeds", "1", "--ops", "3", "--out", "", "--no-cache",
    ]

    @pytest.fixture(scope="class")
    def json_by_jobs(self, tmp_path_factory):
        out = {}
        for jobs in (1, 2, 8):
            path = tmp_path_factory.mktemp("chaos") / f"jobs{jobs}.json"
            rc = cli_main(
                self.ARGS + ["--jobs", str(jobs), "--chunk", "2",
                             "--json", str(path)]
            )
            assert rc == 0
            out[jobs] = path.read_bytes()
        return out

    def test_json_bytes_identical_at_1_2_8(self, json_by_jobs):
        assert json_by_jobs[1] == json_by_jobs[2] == json_by_jobs[8]
        assert json.loads(json_by_jobs[1])  # and it is real JSON


class TestRunCache:
    SMALL = dict(
        algorithms=("abd",), n=5, f=1, value_bits=6, seeds=[0], num_ops=3
    )

    def test_warm_cache_executes_zero_runs(self, tmp_path, monkeypatch):
        cache = RunCache(str(tmp_path))
        first = run_campaign(cache=cache, **self.SMALL)
        runs = len(first.results)
        assert cache.stores == runs and cache.hits == 0

        # Any attempt to actually simulate on the warm pass is a failure.
        def boom(payload):
            raise AssertionError("simulator run executed on warm cache")

        monkeypatch.setattr(campaign_mod, "_campaign_task", boom)
        warm_cache = RunCache(str(tmp_path))
        progress = []
        second = run_campaign(
            cache=warm_cache, progress=progress.append, **self.SMALL
        )
        assert warm_cache.hits == runs
        assert warm_cache.stores == 0
        assert second.format() == first.format()
        assert json.dumps(second.to_json_dict(), sort_keys=True) == json.dumps(
            first.to_json_dict(), sort_keys=True
        )
        assert progress and all(line.endswith("(cached)") for line in progress)

    def test_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FINGERPRINT_ENV, "code-version-a")
        cache = RunCache(str(tmp_path))
        run_campaign(cache=cache, **self.SMALL)
        stores = cache.stores
        assert stores > 0

        monkeypatch.setenv(FINGERPRINT_ENV, "code-version-b")
        cold = RunCache(str(tmp_path))
        run_campaign(cache=cold, **self.SMALL)
        assert cold.hits == 0
        assert cold.misses == stores
        assert cold.stores == stores

    def test_key_covers_all_parameters(self):
        from repro.faults.campaign import FaultConfig, campaign_task_key

        config = FaultConfig(name="clean", seed=0)
        base = campaign_task_payload("abd", config, 5, 1, 6, 4, 60_000)
        key = campaign_task_key(base)
        for field, value in (("n", 7), ("num_ops", 5), ("algorithm", "cas")):
            changed = dict(base, **{field: value})
            assert campaign_task_key(changed) != key, field
