"""The self-healing campaign runtime, end to end.

Acceptance properties of the supervisor + journal integration in
``run_campaign`` (and the ``repro chaos`` exit-code semantics):

* a run that hangs past ``--task-timeout`` is killed, retried, and
  after ``--max-retries`` timed-out executions recorded with a
  ``quarantined`` verdict while the campaign *completes*;
* quarantined results are journaled but never cached;
* a campaign resumed from its journal re-executes only the missing
  runs and produces byte-identical reports;
* ``KeyboardInterrupt`` yields a partial report (contiguous prefix,
  ``interrupted=True``) whose journal resumes to byte-identity.
"""

import json
import time

import repro.faults.campaign as campaign_mod
from repro.cli import main as cli_main
from repro.faults.campaign import (
    campaign_journal_meta,
    campaign_task_key,
    campaign_task_payload,
    generate_fault_configs,
    run_campaign,
)
from repro.parallel import CampaignJournal, RunCache, shutdown_pool

#: One algorithm, one seed: ten runs, one per fault shape.
SMALL = dict(
    algorithms=("abd",), n=5, f=1, value_bits=6, seeds=[0], num_ops=3
)

_REAL_TASK = campaign_mod._campaign_task


def _hang_on_drops(payload):
    """Real campaign task, except the 'drops' shape hangs forever."""
    if payload["config"]["name"] == "drops":
        time.sleep(60)
    return _REAL_TASK(payload)


_CALLS = {"n": 0, "limit": None}


def _interrupt_partway(payload):
    """Real campaign task that raises KeyboardInterrupt past a budget."""
    _CALLS["n"] += 1
    if _CALLS["limit"] is not None and _CALLS["n"] > _CALLS["limit"]:
        raise KeyboardInterrupt()
    return _REAL_TASK(payload)


def _small_meta(**overrides):
    params = dict(
        algorithms=["abd"],
        n=5,
        f=1,
        value_bits=6,
        seeds=[0],
        num_ops=3,
        max_ticks=60_000,
    )
    params.update(overrides)
    return campaign_journal_meta(**params)


def _small_keys():
    return [
        campaign_task_key(
            campaign_task_payload("abd", config, 5, 1, 6, 3, 60_000)
        )
        for config in generate_fault_configs(1, [0])
    ]


class TestQuarantine:
    def test_hanging_run_quarantined_campaign_completes(
        self, tmp_path, monkeypatch
    ):
        shutdown_pool()
        monkeypatch.setattr(campaign_mod, "_campaign_task", _hang_on_drops)
        cache = RunCache(str(tmp_path / "cache"))
        journal = CampaignJournal.create(
            str(tmp_path / "c.journal"), _small_meta(task_timeout=0.4)
        )
        report = run_campaign(
            jobs=2,
            chunk=2,
            cache=cache,
            task_timeout=0.4,
            max_retries=2,
            journal=journal,
            **SMALL,
        )
        journal.close()
        shutdown_pool()

        quarantined = [r for r in report.results if r.quarantined]
        assert len(report.results) == 10  # the campaign completed
        assert [r.config.name for r in quarantined] == ["drops"]
        assert quarantined[0].verdict() == "quarantined"
        assert quarantined[0].quarantine_attempts == 2
        assert not quarantined[0].acceptable
        assert report.runtime["parallel.quarantined"] == 1
        assert report.runtime["parallel.timeouts"] >= 2

        text = report.format()
        assert "1 quarantined" in text
        assert "engine:" in text
        assert "campaign FAILED" in text

        doc = report.to_json_dict()
        assert doc["summary"]["quarantined"] == 1
        assert doc["runtime"]["parallel.quarantined"] == 1
        assert any(
            entry["quarantined"] and entry["verdict"] == "quarantined"
            for entry in doc["failures"]
        )

        # Journaled (resume must not re-run the poison) but never
        # cached (the cache key ignores the timeout policy).
        keys = _small_keys()
        drops_key = keys[
            [c.name for c in generate_fault_configs(1, [0])].index("drops")
        ]
        resumed = CampaignJournal.resume(
            str(tmp_path / "c.journal"), _small_meta(task_timeout=0.4)
        )
        assert resumed.get(drops_key)["quarantined"] is True
        assert len(resumed) == 10
        resumed.close()
        assert cache.get(drops_key) is None
        assert sum(1 for key in keys if cache.get(key) is not None) == 9

    def test_cli_exit_4_on_quarantine_only_failures(
        self, tmp_path, monkeypatch
    ):
        shutdown_pool()
        monkeypatch.setattr(campaign_mod, "_campaign_task", _hang_on_drops)
        json_path = str(tmp_path / "out.json")
        rc = cli_main(
            [
                "chaos", "--algorithms", "abd", "--seeds", "1", "--ops", "3",
                "--out", "", "--no-cache", "--jobs", "2", "--chunk", "2",
                "--task-timeout", "0.4", "--max-retries", "2",
                "--json", json_path,
            ]
        )
        shutdown_pool()
        assert rc == 4  # quarantined-only: neither pass nor proven failure
        doc = json.loads(open(json_path, encoding="utf-8").read())
        assert doc["summary"]["quarantined"] == 1
        assert doc["runtime"]["parallel.quarantined"] == 1


class TestJournalResume:
    def test_resume_executes_zero_runs_byte_identical(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "c.journal")
        journal = CampaignJournal.create(path, _small_meta())
        first = run_campaign(jobs=1, journal=journal, **SMALL)
        journal.close()

        def boom(payload):
            raise AssertionError("run re-executed despite a full journal")

        monkeypatch.setattr(campaign_mod, "_campaign_task", boom)
        resumed = CampaignJournal.resume(path, _small_meta())
        assert resumed.loaded == 10
        progress = []
        second = run_campaign(
            jobs=1, journal=resumed, progress=progress.append, **SMALL
        )
        resumed.close()
        assert second.format() == first.format()
        assert json.dumps(
            second.to_json_dict(), sort_keys=True
        ) == json.dumps(first.to_json_dict(), sort_keys=True)
        assert progress and all(line.endswith("(cached)") for line in progress)

    def test_partial_journal_reexecutes_misses_only(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "c.journal")
        journal = CampaignJournal.create(path, _small_meta())
        first = run_campaign(jobs=1, journal=journal, **SMALL)
        journal.close()

        # Keep the header and the first four completed runs — as if the
        # campaign had been killed there.
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:5]) + "\n")

        executed = []

        def counting_task(payload):
            executed.append(payload["config"]["name"])
            return _REAL_TASK(payload)

        monkeypatch.setattr(campaign_mod, "_campaign_task", counting_task)
        resumed = CampaignJournal.resume(path, _small_meta())
        assert resumed.loaded == 4
        second = run_campaign(jobs=1, journal=resumed, **SMALL)
        resumed.close()
        assert len(executed) == 6  # the missing runs, each exactly once
        assert second.format() == first.format()


class TestInterrupt:
    def test_interrupt_partial_report_then_resume_byte_identical(
        self, tmp_path, monkeypatch
    ):
        reference = run_campaign(jobs=1, **SMALL)
        path = str(tmp_path / "c.journal")

        _CALLS["n"], _CALLS["limit"] = 0, 4
        monkeypatch.setattr(
            campaign_mod, "_campaign_task", _interrupt_partway
        )
        journal = CampaignJournal.create(path, _small_meta())
        partial = run_campaign(jobs=1, journal=journal, **SMALL)
        journal.close()
        assert partial.interrupted
        assert len(partial.results) == 4  # the contiguous completed prefix
        assert "campaign INTERRUPTED" in partial.format()
        assert partial.to_json_dict()["interrupted"] is True

        _CALLS["limit"] = None  # behave normally again
        resumed = CampaignJournal.resume(path, _small_meta())
        assert resumed.loaded == 4
        final = run_campaign(jobs=1, journal=resumed, **SMALL)
        resumed.close()
        assert not final.interrupted
        assert final.format() == reference.format()
        assert json.dumps(
            final.to_json_dict(), sort_keys=True
        ) == json.dumps(reference.to_json_dict(), sort_keys=True)

    def test_cli_interrupt_exits_130_with_resume_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        _CALLS["n"], _CALLS["limit"] = 0, 2
        monkeypatch.setattr(
            campaign_mod, "_campaign_task", _interrupt_partway
        )
        path = str(tmp_path / "c.journal")
        rc = cli_main(
            [
                "chaos", "--algorithms", "abd", "--seeds", "1", "--ops", "3",
                "--out", "", "--no-cache", "--jobs", "1",
                "--journal", path,
            ]
        )
        _CALLS["limit"] = None
        assert rc == 130
        out = capsys.readouterr().out
        assert "campaign INTERRUPTED" in out
        assert f"resume with --resume {path}" in out


class TestCliUsageErrors:
    def test_journal_and_resume_must_agree(self, tmp_path, capsys):
        rc = cli_main(
            [
                "chaos", "--out", "", "--no-cache",
                "--journal", str(tmp_path / "a.journal"),
                "--resume", str(tmp_path / "b.journal"),
            ]
        )
        assert rc == 3
        assert "different files" in capsys.readouterr().out

    def test_resume_missing_journal_is_usage_error(self, tmp_path, capsys):
        rc = cli_main(
            [
                "chaos", "--out", "", "--no-cache",
                "--resume", str(tmp_path / "absent.journal"),
            ]
        )
        assert rc == 3
        assert "cannot resume" in capsys.readouterr().out

    def test_max_retries_must_be_positive(self, capsys):
        rc = cli_main(
            ["chaos", "--out", "", "--no-cache", "--max-retries", "0"]
        )
        assert rc == 3
