"""Edge cases in timed crash/recovery schedules.

Covers the corners the campaign's happy path never exercises: a
recovery firing for a process that never actually crashed (the driver
clock jumped past both ticks at once), crash and recovery colliding on
one tick, and recoveries scheduled beyond the watchdog budget — in
every case ``run_chaos_workload`` must neither wedge nor miscount.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CAMPAIGN_ALGORITHMS,
    FaultConfig,
    FaultTimeline,
    run_chaos_workload,
)
from repro.faults.recovery import CrashRecoverySchedule
from repro.registers.abd import build_abd_system


class TestScheduleEdges:
    def test_clock_jump_fires_recovery_first(self):
        """Applying at a tick past both crash and recovery must not
        crash-then-recover (let alone crash and strand): the recovery
        wins, the crash is marked implied, and nothing fires."""
        handle = build_abd_system(n=5, f=1, value_bits=4)
        schedule = CrashRecoverySchedule((("s004", 10, 20),))
        applied: set = set()
        fired = schedule.apply(handle.world, tick=25, applied=applied)
        assert fired == 0
        assert not handle.world.process("s004").failed
        assert schedule.done(applied)
        # Idempotent: re-applying later fires nothing new.
        assert schedule.apply(handle.world, tick=30, applied=applied) == 0

    def test_same_tick_crash_and_recover_rejected(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        schedule = CrashRecoverySchedule((("s004", 10, 10),))
        with pytest.raises(ConfigurationError):
            schedule.validate(handle.world, f=1)

    def test_adjacent_handoff_within_budget(self):
        """b crashes the tick a recovers: concurrent downs peak at 1,
        so the schedule is valid at f=1 despite 2 cumulative crashes."""
        handle = build_abd_system(n=5, f=1, value_bits=4)
        schedule = CrashRecoverySchedule(
            (("s003", 10, 20), ("s004", 20, 30))
        )
        schedule.validate(handle.world, f=1)
        assert schedule.max_concurrent_down(["s003", "s004"]) == 1


class TestChaosDriverEdges:
    def test_recovery_beyond_budget_diagnoses_not_wedges(self):
        """f+1 servers down with recoveries past max_ticks: the driver
        must give up with a diagnosis (not spin forever waiting on the
        recoveries) and count 2 crashes, 0 recoveries."""
        handle = CAMPAIGN_ALGORITHMS["abd"](5, 1, 6)
        config = FaultConfig(name="edge", seed=0, expect_liveness=False)
        timeline = FaultTimeline(
            crash_events=(("s003", 5, 9_000), ("s004", 5, 9_000)),
        )
        result = run_chaos_workload(
            handle, config, num_ops=6, max_ticks=2_000, timeline=timeline
        )
        assert not result.live
        assert result.diagnosis is not None
        assert result.crashes == 2
        assert result.recoveries == 0
        # Not silent: the failure is acceptable only because diagnosed.
        assert result.acceptable

    def test_crash_recovery_config_counts_both_sides(self):
        """The derived two-round schedule completes: every crash has
        its matching recovery fired and the workload stays live."""
        handle = CAMPAIGN_ALGORITHMS["abd"](5, 1, 6)
        config = FaultConfig(
            name="edge",
            seed=3,
            crash_recovery=True,
            fault_target_count=1,
            expect_liveness=True,
        )
        result = run_chaos_workload(handle, config, num_ops=40)
        assert result.live
        assert result.crashes == 2
        assert result.recoveries == 2
        assert result.timeline.event_count == 2
