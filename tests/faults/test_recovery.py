"""Tests for crash-recovery: World.recover and CrashRecoverySchedule."""

import pytest

from repro.consistency.atomicity import check_atomicity
from repro.errors import ConfigurationError, SimulationError
from repro.faults.recovery import CrashRecoverySchedule
from repro.registers.abd import build_abd_system
from repro.sim.failures import FailurePattern
from repro.sim.process import ProcessContext, ServerProcess


class TestWorldRecover:
    def test_recover_restores_participation(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        sid = handle.server_ids[0]
        world.crash(sid)
        handle.write(7)  # completes via the other four servers
        world.recover(sid)
        assert not world.process(sid).failed
        assert handle.read().value == 7

    def test_recover_records_action(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        world.crash("s000")
        world.recover("s000")
        kinds = [a.kind for a in world.trace]
        assert kinds == ["crash", "recover"]

    def test_recover_requires_failed(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        with pytest.raises(SimulationError):
            handle.world.recover("s000")

    def test_rejoin_keeps_persisted_state(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        sid = handle.server_ids[0]
        handle.write(5)  # s000 stores (tag, 5)
        digest_before = world.process(sid).state_digest()
        world.crash(sid)
        handle.write(9)  # delivered to s000 is dropped while down
        world.recover(sid)
        # Persisted state: exactly what it had at the crash point.
        assert world.process(sid).state_digest() == digest_before

    def test_on_recover_hook_called(self):
        calls = []

        class Probe(ServerProcess):
            def on_message(self, ctx, src, message):  # pragma: no cover
                pass

            def state_digest(self):
                return ()

            def on_recover(self, ctx):
                calls.append((self.pid, ctx.step))

        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        world.add_process(Probe("probe"))
        world.crash("probe")
        world.recover("probe")
        assert calls == [("probe", world.step_count)]

    def test_default_hook_is_noop(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        world.crash("s000")
        world.recover("s000")  # ABD server inherits the no-op default

    def test_history_atomic_across_crash_recover_cycles(self):
        handle = build_abd_system(n=5, f=1, value_bits=4, num_readers=2)
        world = handle.world
        sid = handle.server_ids[-1]
        for cycle in range(3):
            handle.write(cycle + 1)
            world.crash(sid)
            handle.read(reader=handle.reader_ids[0])
            world.recover(sid)
            handle.read(reader=handle.reader_ids[1])
        assert check_atomicity(world.operations).ok


class TestCrashRecoverySchedule:
    def build(self):
        return build_abd_system(n=5, f=2, value_bits=4)

    def test_from_pattern(self):
        pattern = FailurePattern(initial=("s000",), timed=(("s001", 10),))
        schedule = CrashRecoverySchedule.from_pattern(pattern)
        assert ("s000", 0, None) in schedule.events
        assert ("s001", 10, None) in schedule.events

    def test_validate_concurrent_budget(self):
        handle = self.build()
        # Three overlapping server downs exceed f=2 ...
        bad = CrashRecoverySchedule(
            (("s000", 0, 50), ("s001", 10, 60), ("s002", 20, 70))
        )
        with pytest.raises(ConfigurationError):
            bad.validate(handle.world, f=2)
        # ... but the same three staggered to never overlap are fine,
        # even though cumulative crashes exceed f.
        ok = CrashRecoverySchedule(
            (("s000", 0, 10), ("s001", 10, 20), ("s002", 20, 30))
        )
        ok.validate(handle.world, f=2)
        assert ok.max_concurrent_down() == 1

    def test_validate_rejects_inverted_interval(self):
        handle = self.build()
        with pytest.raises(ConfigurationError):
            CrashRecoverySchedule((("s000", 20, 10),)).validate(handle.world, 2)

    def test_validate_rejects_overlapping_same_pid(self):
        handle = self.build()
        with pytest.raises(ConfigurationError):
            CrashRecoverySchedule(
                (("s000", 0, 50), ("s000", 25, 75))
            ).validate(handle.world, 2)

    def test_apply_fires_in_order(self):
        handle = self.build()
        world = handle.world
        schedule = CrashRecoverySchedule((("s000", 5, 15),))
        applied = set()
        assert schedule.apply(world, 4, applied) == 0
        assert schedule.apply(world, 5, applied) == 1
        assert world.process("s000").failed
        assert schedule.apply(world, 10, applied) == 0  # crash fired once
        assert schedule.apply(world, 15, applied) == 1
        assert not world.process("s000").failed
        assert schedule.done(applied)

    def test_apply_skips_net_noop_when_both_overdue(self):
        handle = self.build()
        world = handle.world
        schedule = CrashRecoverySchedule((("s000", 5, 15),))
        applied = set()
        # A clock jump past both events nets out to "up".
        assert schedule.apply(world, 100, applied) == 0
        assert not world.process("s000").failed
        assert schedule.done(applied)

    def test_next_tick_after(self):
        schedule = CrashRecoverySchedule((("s000", 5, 15), ("s001", 40, None)))
        assert schedule.next_tick_after(0) == 5
        assert schedule.next_tick_after(5) == 15
        assert schedule.next_tick_after(15) == 40
        assert schedule.next_tick_after(40) is None
