"""Tier-1 tests for the Byzantine fault band.

Covers the tamper-mode registry (satellite: one registration point,
helpful errors), the :class:`ByzantineConfig` model and corruption
roles, the graceful-degradation contract (masked corruption yields a
``degraded`` — never a violated — verdict), and the campaign-report
visibility of ``faults.byzantine.*`` counters even for passing runs.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import (
    BYZANTINE_ROLE_NAMES,
    AdversaryConfig,
    ByzantineConfig,
    ChannelAdversary,
    register_tamper_mode,
    tamper_mode_names,
    unregister_tamper_mode,
)
from repro.faults.campaign import (
    BYZANTINE_SHAPES,
    FAULT_SHAPES,
    FaultConfig,
    generate_fault_configs,
    run_campaign,
    run_chaos_workload,
)
from repro.faults.watchdog import VERDICT_BYZANTINE
from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.registers.catalog import build_client_system
from repro.sim.events import Message


# -- tamper-mode registry ----------------------------------------------------


class TestTamperRegistry:
    def test_builtin_mode_registered(self):
        assert "stale-tags" in tamper_mode_names()

    def test_unknown_mode_lists_valid_ones(self):
        with pytest.raises(ConfigurationError) as exc:
            AdversaryConfig(tamper_mode="bogus").validate()
        assert "bogus" in str(exc.value)
        assert "stale-tags" in str(exc.value)

    def test_register_round_trip(self):
        def nop(src, dst, message):
            return None

        register_tamper_mode("test-nop", nop)
        try:
            assert "test-nop" in tamper_mode_names()
            AdversaryConfig(tamper_mode="test-nop").validate()
        finally:
            unregister_tamper_mode("test-nop")
        assert "test-nop" not in tamper_mode_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_tamper_mode("stale-tags", lambda s, d, m: None)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_tamper_mode("", lambda s, d, m: None)


# -- the adversary model -----------------------------------------------------


class TestByzantineConfig:
    def test_role_cycle(self):
        byz = ByzantineConfig(servers=("s000", "s001"))
        assert byz.role_of("s000") == BYZANTINE_ROLE_NAMES[0]
        assert byz.role_of("s001") == BYZANTINE_ROLE_NAMES[1]
        assert byz.role_of("s002") is None

    def test_unknown_role_rejected(self):
        with pytest.raises(ConfigurationError):
            ByzantineConfig(servers=("s000",), roles=("nonsense",)).validate()

    def test_empty_roles_rejected(self):
        with pytest.raises(ConfigurationError):
            ByzantineConfig(servers=("s000",), roles=()).validate()

    def test_validated_via_adversary_config(self):
        config = AdversaryConfig(
            byzantine=ByzantineConfig(servers=("s000",), roles=("bad",))
        )
        with pytest.raises(ConfigurationError):
            config.validate()


class TestCorruptionRoles:
    def _adversary(self, roles):
        return ChannelAdversary(
            AdversaryConfig(
                byzantine=ByzantineConfig(servers=("s000",), roles=roles)
            ),
            seed=0,
        )

    def test_equivocate_depends_on_destination(self):
        adv = self._adversary(("equivocate",))
        msg = Message.make("get-ack", ref=("r000", 1), tag=(3, "w000"), value=5)
        a = adv.transform("s000", "r000", msg)
        b = adv.transform("s000", "r001", msg)
        assert a.get("value") != msg.get("value")
        assert b.get("value") != msg.get("value")
        # Different readers can be told different lies; the same reader
        # always gets the same lie (deterministic, no RNG consumed).
        assert a.get("value") == adv.transform("s000", "r000", msg).get("value")

    def test_garbage_corrupts_coded_elements(self):
        adv = self._adversary(("garbage",))
        msg = Message.make("read-ack", ref=("r000", 1), tag=(3, "w000"), elem=9)
        out = adv.transform("s000", "r000", msg)
        assert out.get("elem") != 9
        assert adv.byzantine_corruptions == 1
        assert adv.byzantine_by_role == {"garbage": 1}

    def test_stale_replay_only_lowers_tags(self):
        adv = self._adversary(("stale-replay",))
        msg = Message.make("get-ack", ref=("r000", 1), tag=(3, "w000"), value=5)
        out = adv.transform("s000", "r000", msg)
        assert out.get("tag") == (0, "")
        assert out.get("value") == 0

    def test_ack_drop_neutralizes_installs(self):
        adv = self._adversary(("ack-drop",))
        msg = Message.make("put", ref=("w000", 1), tag=(3, "w000"), value=5)
        out = adv.transform("w000", "s000", msg)
        assert out.get("tag") == (0, "")
        assert out.get("value") == 0

    def test_honest_traffic_untouched(self):
        adv = self._adversary(("equivocate",))
        msg = Message.make("get-ack", ref=("r000", 1), tag=(3, "w000"), value=5)
        assert adv.transform("s001", "r000", msg) is msg
        assert adv.byzantine_corruptions == 0

    def test_no_rng_consumed(self):
        # Corruption must never touch the channel-adversary RNG stream,
        # or honest drop/dup/reorder decisions would diverge from a
        # corruption-free replay of the same seed.
        adv = self._adversary(("equivocate", "garbage"))
        before = adv.rng.random()
        adv2 = self._adversary(("equivocate", "garbage"))
        msg = Message.make("get-ack", ref=("r000", 1), tag=(3, "w000"), value=5)
        adv2.transform("s000", "r000", msg)
        assert adv2.rng.random() == before

    def test_stats_include_byzantine_counters(self):
        adv = self._adversary(("garbage",))
        stats = adv.stats()
        assert stats["byzantine_corruptions"] == 0
        assert stats["byzantine_by_role"] == {}


# -- graceful degradation ----------------------------------------------------


def _byz_config(name="byz-equivocate", roles=("equivocate",), seed=0, **kw):
    return FaultConfig(
        name=name, seed=seed, byzantine_count=1, byzantine_roles=roles, **kw
    )


class TestGracefulDegradation:
    def test_equivocation_degraded_not_violated(self):
        # The tier-1 smoke the issue pins: one equivocation run must
        # yield Degraded (masked corruption), never a safety violation,
        # deterministically.
        digests = set()
        for _ in range(2):
            handle = build_client_system("abd", 5, 1, 6, byzantine_budget=1)
            result = run_chaos_workload(
                handle, _byz_config(), num_ops=10, max_ticks=4000
            )
            assert result.safety_ok
            assert result.live
            assert result.byzantine_detected > 0
            assert result.degraded
            assert result.verdict() == "degraded"
            assert result.acceptable
            digests.add(json.dumps(result.to_cache_dict(), sort_keys=True))
        assert len(digests) == 1  # bit-identical across runs

    def test_cas_validated_decode_degrades(self):
        handle = build_client_system("cas", 5, 1, 6, byzantine_budget=1)
        result = run_chaos_workload(
            handle, _byz_config(roles=("garbage",)), num_ops=10, max_ticks=4000
        )
        assert result.safety_ok
        assert result.degraded

    def test_unprotected_clients_violate_safety(self):
        # byzantine_budget=0 with corrupt servers: the rigged fixture
        # for triage — corruption goes unmasked and atomicity breaks.
        handle = build_client_system("abd", 5, 1, 6, byzantine_budget=0)
        result = run_chaos_workload(
            handle,
            _byz_config(byzantine_budget=0),
            num_ops=10,
            max_ticks=4000,
        )
        assert not result.safety_ok
        assert result.verdict() != "degraded"

    def test_budget_sentinel_resolution(self):
        assert _byz_config().resolved_byzantine_budget() == 1
        assert (
            _byz_config(byzantine_budget=0).resolved_byzantine_budget() == 0
        )
        assert FaultConfig(name="x").resolved_byzantine_budget() == 0

    def test_builder_rejects_over_budget(self):
        with pytest.raises(ConfigurationError):
            build_abd_system(5, 1, byzantine_budget=2)  # q+b = 6 > 5
        with pytest.raises(ConfigurationError):
            build_cas_system(5, 1, byzantine_budget=1, k=3)  # k > n-2f-2b
        with pytest.raises(ConfigurationError):
            build_abd_system(5, 1, byzantine_budget=-1)

    def test_swmr_algorithms_reject_byzantine(self):
        with pytest.raises(ConfigurationError):
            build_client_system("swmr-abd", 5, 1, 6, byzantine_budget=1)

    def test_cas_byzantine_rate_drop(self):
        # The BKS duality point: defending against b corrupt servers
        # costs code rate (k drops from n-2f to n-2f-2b).
        plain = build_cas_system(7, 1, value_bits=10)
        byz = build_cas_system(7, 1, value_bits=10, byzantine_budget=1)
        assert plain.params["k"] == 5
        assert byz.params["k"] == 3

    def test_stale_replay_is_undetectable_but_safe(self):
        # A stale response is indistinguishable from honest lag, so it
        # must NOT count as detected corruption — the run stays plain
        # "live", and safety holds because validation never selects an
        # unconfirmed stale pair over a confirmed newer one.
        handle = build_client_system("abd", 5, 1, 6, byzantine_budget=1)
        result = run_chaos_workload(
            handle,
            _byz_config(roles=("stale-replay",)),
            num_ops=10,
            max_ticks=4000,
        )
        assert result.safety_ok
        assert result.verdict() == "live"
        assert result.byzantine_detected == 0


# -- campaign wiring ---------------------------------------------------------


class TestCampaignBand:
    def test_default_grid_unchanged(self):
        configs = generate_fault_configs(1, [0])
        assert len(configs) == len(FAULT_SHAPES)
        assert all(c.byzantine_count == 0 for c in configs)

    def test_byzantine_grid_appends_band(self):
        configs = generate_fault_configs(1, [0], byzantine=1)
        assert len(configs) == len(FAULT_SHAPES) + len(BYZANTINE_SHAPES)
        byz = [c for c in configs if c.byzantine_count == 1]
        assert len(byz) == len(BYZANTINE_SHAPES)

    def test_counters_visible_in_json_without_violation(self):
        # Satellite: faults.tampers / faults.byzantine.* visibility —
        # every per-run summary carries the corruption counters even
        # when the run passes.
        report = run_campaign(
            algorithms=["abd"],
            seeds=[0],
            byzantine=1,
            num_ops=8,
            max_ticks=4000,
        )
        assert report.passed
        doc = report.to_json_dict()
        assert doc["summary"]["degraded"] > 0
        for run in doc["runs"]:
            assert "tampers" in run["fault_stats"]
            assert "byzantine_corruptions" in run["fault_stats"]
            assert "byzantine_by_role" in run["fault_stats"]
            assert "byzantine_detected" in run
        byz_runs = [
            r for r in doc["runs"] if r["config"]["byzantine_count"] > 0
        ]
        assert any(
            r["fault_stats"]["byzantine_corruptions"] > 0 for r in byz_runs
        )
        assert any(r["verdict"] == "degraded" for r in byz_runs)

    def test_report_table_has_byz_column(self):
        report = run_campaign(
            algorithms=["abd"],
            seeds=[0],
            byzantine=1,
            num_ops=8,
            max_ticks=4000,
        )
        text = report.format()
        assert "byz" in text.splitlines()[2]
        assert "degraded" in text

    def test_byz_crash_diagnosed_as_byzantine_suppressed(self):
        handle = build_client_system("abd", 5, 1, 6, byzantine_budget=1)
        config = _byz_config(
            name="byz-crash",
            roles=(),
            crash_recovery=True,
            fault_target_count=1,
            expect_liveness=False,
        )
        result = run_chaos_workload(handle, config, num_ops=8, max_ticks=4000)
        assert result.acceptable
        if not result.live:
            assert result.diagnosis is not None
            assert result.diagnosis.verdict == VERDICT_BYZANTINE
            assert result.diagnosis.byzantine_servers == ("s000",)
