"""Tests for adversarial channel behaviors (drops, dups, reorder, partitions)."""

import pytest

from repro.consistency.atomicity import check_atomicity
from repro.errors import ConfigurationError, DeadlockDetectedError
from repro.faults.adversary import AdversaryConfig, ChannelAdversary, Partition
from repro.registers.abd import build_abd_system
from repro.sim.scheduler import ChannelFilter


def lossy_adversary(handle, drop=0.5, seed=0, **kwargs):
    return ChannelAdversary(
        AdversaryConfig(
            drop_probability=drop,
            lossy_processes=frozenset(handle.server_ids[-handle.f:]),
            **kwargs,
        ),
        seed=seed,
    )


class TestPartition:
    def test_sides_and_crossing(self):
        part = Partition.isolate(["r000", "s004"])
        assert part.crosses("r000", "s000")
        assert part.crosses("s000", "s004")
        assert not part.crosses("r000", "s004")
        assert not part.crosses("s000", "s001")  # both in implicit rest group

    def test_split_groups(self):
        part = Partition.split(["a", "b"], ["c"])
        assert not part.crosses("a", "b")
        assert part.crosses("a", "c")
        assert part.crosses("c", "d")  # d is in the rest group

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            Partition.split(["a", "b"], ["b", "c"])


class TestAdversaryConfig:
    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryConfig(duplicate_probability=1.5).validate()

    def test_unrestricted_drops_rejected(self):
        # Loss without a target set breaks liveness below the budget.
        with pytest.raises(ConfigurationError):
            AdversaryConfig(drop_probability=0.1).validate()

    def test_default_config_is_reliable(self):
        adv = ChannelAdversary()
        assert adv.fate("a", "b", None) == "deliver"
        assert adv.pick_index(("a", "b"), 5) == 0
        assert adv.allows("a", "b")


class TestPartitionGate:
    def test_partition_disables_crossing_channels(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        adv = ChannelAdversary()
        world.adversary = adv
        world.invoke_write(handle.writer_ids[0], 3)
        adv.start_partition(Partition.isolate([handle.writer_ids[0]]))
        assert world.enabled_channels() == []
        assert world.undelivered_channels()  # messages still queued

    def test_heal_reenables_and_write_completes(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        adv = ChannelAdversary()
        world.adversary = adv
        record = world.invoke_write(handle.writer_ids[0], 3)
        adv.start_partition(Partition.isolate([handle.writer_ids[0]]))
        with pytest.raises(DeadlockDetectedError) as info:
            world.run_op_to_completion(record)
        assert info.value.blocked_channels  # structured diagnosis
        adv.heal_partition()
        world.run_op_to_completion(record)
        assert record.is_complete

    def test_partition_composes_with_channel_filter(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        world = handle.world
        adv = ChannelAdversary()
        world.adversary = adv
        world.invoke_write(handle.writer_ids[0], 1)
        adv.start_partition(Partition.isolate([handle.server_ids[0]]))
        # Filter freezes s001; partition cuts s000: neither may deliver.
        enabled = world.enabled_channels(
            ChannelFilter.freeze_process(handle.server_ids[1])
        )
        endpoints = {pid for key in enabled for pid in key}
        assert handle.server_ids[0] not in endpoints
        assert handle.server_ids[1] not in endpoints
        assert enabled  # other servers still reachable

    def test_as_filter_composition(self):
        adv = ChannelAdversary()
        adv.start_partition(Partition.isolate(["x"]))
        combined = adv.as_filter().intersect(ChannelFilter.freeze_process("y"))
        assert not combined.allows("x", "a")
        assert not combined.allows("a", "y")
        assert combined.allows("a", "b")


class TestDropsDupsReorder:
    def test_drops_recorded_as_lose_actions(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        handle.world.adversary = lossy_adversary(handle, drop=1.0, max_drops=3)
        handle.write(5)
        handle.read()
        losses = [a for a in handle.world.trace if a.kind == "lose"]
        assert len(losses) == 3  # capped by max_drops
        lossy = handle.server_ids[-1]
        assert all(lossy in (a.src, a.dst) for a in losses)

    def test_write_completes_despite_lossy_server(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        handle.world.adversary = lossy_adversary(handle, drop=1.0)
        handle.write(5)
        assert handle.read().value == 5

    def test_duplicates_preserve_atomicity(self):
        handle = build_abd_system(n=5, f=1, value_bits=4, num_readers=2)
        handle.world.adversary = ChannelAdversary(
            AdversaryConfig(duplicate_probability=0.5), seed=7
        )
        for v in (1, 2, 3):
            handle.write(v)
            handle.read(reader=handle.reader_ids[0])
            handle.read(reader=handle.reader_ids[1])
        assert handle.world.adversary.duplicates > 0
        assert check_atomicity(handle.world.operations).ok

    def test_reordering_bounded_and_safe(self):
        handle = build_abd_system(n=5, f=1, value_bits=4)
        handle.world.adversary = ChannelAdversary(
            AdversaryConfig(
                reorder_probability=0.8,
                reorder_window=3,
                duplicate_probability=0.3,
            ),
            seed=11,
        )
        for v in (1, 2, 3, 4):
            handle.write(v)
        assert handle.read().value == 4
        assert check_atomicity(handle.world.operations).ok

    def test_seeded_determinism(self):
        def run(seed):
            handle = build_abd_system(n=5, f=2, value_bits=4)
            handle.world.adversary = lossy_adversary(
                handle, drop=0.4, seed=seed, duplicate_probability=0.2
            )
            handle.write(9)
            handle.read()
            return (
                handle.world.adversary.stats(),
                [(a.kind, a.src, a.dst) for a in handle.world.trace],
            )

        assert run(3) == run(3)
        assert run(3) != run(4)  # different seed, different fault pattern
