"""Tier-2 Byzantine campaign: the full band over ABD and CAS.

The acceptance contract for ``repro chaos --byzantine 1``: the seeded
campaign is byte-identical at any ``--jobs`` count, masked corruption
surfaces as ``degraded`` (never as a safety violation), and the only
legitimate stalls are diagnosed ones.
"""

import json

import pytest

from repro.faults.campaign import run_campaign

pytestmark = pytest.mark.tier2


def _run(jobs=None):
    return run_campaign(
        algorithms=["abd", "cas"],
        n=5,
        f=1,
        value_bits=6,
        seeds=[0, 1],
        num_ops=10,
        max_ticks=8000,
        byzantine=1,
        jobs=jobs,
    )


def test_byzantine_campaign_passes_with_degradation():
    report = _run()
    assert report.passed
    byz_runs = [r for r in report.results if r.config.byzantine_count > 0]
    assert byz_runs
    # Masked corruption must be visible, and never cost safety.
    assert all(r.safety_ok for r in report.results)
    assert any(r.degraded for r in byz_runs)
    assert any(
        r.fault_stats.get("byzantine_corruptions", 0) > 0 for r in byz_runs
    )
    # The crash-composition shape may stall, but only diagnosed.
    for r in byz_runs:
        if not r.live:
            assert r.diagnosis is not None


def test_byzantine_campaign_deterministic_across_jobs():
    serial = json.dumps(_run(jobs=1).to_json_dict(), sort_keys=True)
    parallel = json.dumps(_run(jobs=4).to_json_dict(), sort_keys=True)
    assert serial == parallel
