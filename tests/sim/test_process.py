"""Tests for process base classes."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Message
from repro.sim.process import ClientProcess, Process, require_payload


class TestProcessBase:
    def test_on_message_abstract(self):
        p = Process("p")
        with pytest.raises(NotImplementedError):
            p.on_message(None, "x", Message.make("m"))

    def test_state_digest_abstract(self):
        with pytest.raises(NotImplementedError):
            Process("p").state_digest()

    def test_repr_shows_failure(self):
        p = Process("p")
        assert "FAILED" not in repr(p)
        p.failed = True
        assert "FAILED" in repr(p)


class TestClientPending:
    def test_begin_operation_conflict(self):
        c = ClientProcess("c")
        c.begin_operation(0)
        with pytest.raises(SimulationError):
            c.begin_operation(1)

    def test_finish_without_pending(self):
        c = ClientProcess("c")
        with pytest.raises(SimulationError):
            c.finish(None)

    def test_start_hooks_abstract(self):
        c = ClientProcess("c")
        with pytest.raises(NotImplementedError):
            c.start_write(None, 0, 1)
        with pytest.raises(NotImplementedError):
            c.start_read(None, 0)


class TestRequirePayload:
    def test_present(self):
        assert require_payload(Message.make("m", x=5), "x") == 5

    def test_missing(self):
        with pytest.raises(SimulationError):
            require_payload(Message.make("m"), "x")

    def test_none_value_is_present(self):
        assert require_payload(Message.make("m", x=None), "x") is None
