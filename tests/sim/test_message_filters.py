"""Tests for message-kind-aware channel filters."""

from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.sim.events import Message
from repro.sim.scheduler import ChannelFilter


class TestBlockMessageKinds:
    def test_blocks_named_kind(self):
        f = ChannelFilter.block_message_kinds(["put"])
        assert not f.allows("w", "s", Message.make("put", v=1))
        assert f.allows("w", "s", Message.make("get"))

    def test_source_scoped(self):
        f = ChannelFilter.block_message_kinds(["put"], from_pids=["w1"])
        assert not f.allows("w1", "s", Message.make("put"))
        assert f.allows("w2", "s", Message.make("put"))

    def test_no_head_message_passes(self):
        """Key-only checks (no head supplied) are not message-filtered."""
        f = ChannelFilter.block_message_kinds(["put"])
        assert f.allows("w", "s")

    def test_intersect_combines_message_predicates(self):
        block_put = ChannelFilter.block_message_kinds(["put"])
        freeze = ChannelFilter.freeze_process("r")
        both = block_put.intersect(freeze)
        assert not both.allows("w", "s", Message.make("put"))
        assert not both.allows("w", "r", Message.make("get"))
        assert both.allows("w", "s", Message.make("get"))


class TestWorldIntegration:
    def test_value_dependent_hold_freezes_abd_put(self):
        """Blocking 'put' lets an ABD write run its query phase only."""
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 5)
        hold = ChannelFilter.block_message_kinds(["put"])
        world.deliver_all(hold)
        # writer is stuck in phase 2 with puts queued; servers unchanged
        for pid in handle.server_ids:
            assert world.process(pid).value == 0
        put_channels = [
            key for key, ch in world.channels.items()
            if ch and ch.peek().kind == "put"
        ]
        assert len(put_channels) == 3

    def test_releasing_hold_completes_write(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        op = world.invoke_write(handle.writer_ids[0], 5)
        world.deliver_all(ChannelFilter.block_message_kinds(["put"]))
        world.run_op_to_completion(op)
        assert op.is_complete
        assert handle.read().value == 5

    def test_cas_pre_hold(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 99)
        world.deliver_all(ChannelFilter.block_message_kinds(["pre"]))
        # servers still at the initial version only
        for pid in handle.server_ids:
            assert world.process(pid).stored_version_count() == 1

    def test_fifo_blocking_blocks_tail_too(self):
        """A blocked head message blocks later messages on the channel."""
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.enqueue_message("w000", "s000", Message.make("put", ref=0, tag=(9, "w"), value=1))
        world.enqueue_message("w000", "s000", Message.make("get", ref=1))
        hold = ChannelFilter.block_message_kinds(["put"])
        assert world.enabled_channels(hold) == []
