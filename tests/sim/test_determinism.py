"""Simulator determinism and fairness properties.

Determinism is load-bearing: the executable proofs compare state
digests across executions built separately, which is only meaningful
if the same inputs produce bit-identical runs.
"""

from hypothesis import given, settings, strategies as st

from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.sim.network import World
from repro.sim.scheduler import RandomScheduler
from repro.sim.snapshot import world_digest
from repro.workload.generator import run_random_workload


class TestDeterminism:
    def test_identical_runs_identical_worlds(self):
        def run():
            handle = build_abd_system(n=4, f=1, value_bits=6)
            handle.write(11)
            handle.read()
            handle.write(13)
            return world_digest(handle.world)

        assert run() == run()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_seeded_random_scheduler_reproducible(self, seed):
        def run():
            handle = build_cas_system(
                n=5, f=1, value_bits=8, num_writers=2,
                world=World(RandomScheduler(seed)),
            )
            w = handle.world
            a = w.invoke_write(handle.writer_ids[0], 3)
            b = w.invoke_write(handle.writer_ids[1], 7)
            w.run_until(lambda world: a.is_complete and b.is_complete)
            return world_digest(w)

        assert run() == run()

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_workload_reproducible(self, seed):
        def run():
            handle = build_abd_system(
                n=3, f=1, value_bits=4, num_writers=2, num_readers=2
            )
            result = run_random_workload(handle, num_ops=8, seed=seed)
            return [
                (o.kind, o.value, o.invoke_step, o.response_step)
                for o in result.operations
            ]

        assert run() == run()


class TestFairness:
    def test_round_robin_drains_every_channel(self):
        """Under the fair scheduler no queued message is starved."""
        handle = build_abd_system(n=5, f=0, value_bits=4)
        world = handle.world
        op = world.invoke_write(handle.writer_ids[0], 9)
        world.run_op_to_completion(op)
        world.deliver_all()
        assert not world.enabled_channels()
        # every server processed both phases
        for pid in handle.server_ids:
            assert world.process(pid).value == 9

    def test_trace_points_strictly_increase(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(1)
        handle.read()
        steps = [a.step for a in handle.world.trace]
        assert steps == sorted(steps)
        assert len(set(steps)) == len(steps)

    def test_deliver_count_matches_sends(self):
        """Reliable channels: every sent message is eventually delivered
        (or dropped at a failed process) once drained."""
        handle = build_abd_system(n=4, f=1, value_bits=4)
        handle.write(3)
        handle.world.deliver_all()
        in_flight = sum(len(c) for c in handle.world.channels.values())
        assert in_flight == 0
