"""Property test: ``World.fork`` is observationally identical to deepcopy.

For seeded random topologies (algorithm, size, adversary, fault
schedule) driven to a random mid-execution point, the structural fork
and the ``copy.deepcopy`` reference fork are *twins*: the same digest
at the fork point, the same enabled channels, and — fed the identical
delivery sequence, including adversary fault decisions drawn from the
cloned RNG stream — the same digest and trace after every step.  The
parent is never disturbed by either twin.
"""

import random

import pytest

from repro.faults.adversary import AdversaryConfig, ChannelAdversary, Partition
from repro.registers.abd import build_abd_system
from repro.registers.abd_swmr import build_swmr_abd_system
from repro.registers.cas import build_cas_system
from repro.sim.snapshot import world_digest


def _random_world(seed: int):
    """A seeded random system at a random mid-execution point."""
    rng = random.Random(seed)
    kind = rng.choice(["abd", "swmr", "cas"])
    if kind == "abd":
        handle = build_abd_system(
            n=rng.choice([3, 5]), f=1, value_bits=4,
            num_writers=2, num_readers=2,
        )
    elif kind == "swmr":
        handle = build_swmr_abd_system(
            n=rng.choice([3, 4]), f=1, value_bits=4, num_readers=2
        )
    else:
        handle = build_cas_system(n=5, f=1, value_bits=12)
    world = handle.world

    if rng.random() < 0.5:
        world.adversary = ChannelAdversary(
            AdversaryConfig(
                duplicate_probability=0.2,
                reorder_probability=0.3,
                max_duplicates=8,
            ),
            seed=seed,
        )

    # Random fault schedule + operation mix, then a few random steps.
    world.invoke_write(handle.writer_ids[0], rng.randrange(8))
    world.invoke_read(handle.reader_ids[0])
    servers = [p.pid for p in world.servers()]
    if rng.random() < 0.4:
        world.crash(rng.choice(servers))
    if world.adversary is not None and rng.random() < 0.4:
        world.adversary.start_partition(
            Partition.isolate([rng.choice(servers)])
        )
    for _ in range(rng.randrange(12)):
        if not world.enabled_channels():
            break
        world.step()
    return world


@pytest.mark.parametrize("seed", range(16))
def test_fast_fork_twins_deepcopy_fork(seed):
    world = _random_world(seed)
    parent_digest = world_digest(world)
    fast = world.fork()
    slow = world.deepcopy_fork()
    assert world_digest(fast) == world_digest(slow) == parent_digest

    rng = random.Random(seed * 977 + 1)
    for _ in range(40):
        enabled = fast.enabled_channels()
        assert enabled == slow.enabled_channels()
        if not enabled:
            break
        key = rng.choice(enabled)
        action_fast = fast.deliver(*key)
        action_slow = slow.deliver(*key)
        assert (action_fast.kind, action_fast.src, action_fast.dst) == (
            action_slow.kind,
            action_slow.src,
            action_slow.dst,
        )
        assert world_digest(fast) == world_digest(slow)

    assert [
        (a.step, a.kind, a.src, a.dst, a.info) for a in fast.trace
    ] == [(a.step, a.kind, a.src, a.dst, a.info) for a in slow.trace]
    assert [
        (op.op_id, op.kind, op.value, op.invoke_step, op.response_step)
        for op in fast.operations
    ] == [
        (op.op_id, op.kind, op.value, op.invoke_step, op.response_step)
        for op in slow.operations
    ]
    # Neither twin disturbed the parent.
    assert world_digest(world) == parent_digest


@pytest.mark.parametrize("seed", [3, 7])
def test_forked_twins_diverge_independently(seed):
    """Steps taken in one twin are invisible to the other."""
    world = _random_world(seed)
    fast = world.fork()
    slow = world.deepcopy_fork()
    enabled = fast.enabled_channels()
    if not enabled:
        pytest.skip("random point quiesced")
    fast.deliver(*enabled[0])
    assert world_digest(fast) != world_digest(slow) or fast.step_count != slow.step_count
    assert slow.enabled_channels() == world.enabled_channels()


def test_fork_preserves_pending_operation_identity():
    """Forked pending-op records are the fork's own (satellite: index)."""
    handle = build_abd_system(n=3, f=1, value_bits=4)
    world = handle.world
    world.invoke_write(handle.writer_ids[0], 5)
    clone = world.fork()
    pending = clone.pending_operations()
    assert [op.op_id for op in pending] == [0]
    assert pending[0] is clone.operations[0]
    assert pending[0] is not world.operations[0]
    # Completing in the clone does not complete in the parent.
    clone.deliver_all()
    assert clone.pending_operations() == []
    assert [op.op_id for op in world.pending_operations()] == [0]
