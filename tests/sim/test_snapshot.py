"""Tests for World forking and digests.

Fork correctness is load-bearing for the whole lower-bound machinery:
a forked World must be observably identical and causally independent.
"""

from repro.registers.abd import build_abd_system
from repro.registers.cas import build_cas_system
from repro.sim.snapshot import (
    composite_digest,
    fork_world,
    forks_agree,
    world_digest,
)


class TestForkIdentity:
    def test_fork_digests_equal(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(5)
        clone = fork_world(handle.world, verify=True)
        assert forks_agree(handle.world, clone)

    def test_fork_mid_operation(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.world.invoke_write(handle.writer_ids[0], 5)
        handle.world.step()
        clone = fork_world(handle.world, verify=True)
        assert forks_agree(handle.world, clone)


class TestForkIndependence:
    def test_stepping_clone_leaves_original(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.world.invoke_write(handle.writer_ids[0], 5)
        clone = handle.world.fork()
        before = world_digest(handle.world)
        while clone.step() is not None:
            pass
        assert world_digest(handle.world) == before
        assert world_digest(clone) != before

    def test_clone_and_original_converge_deterministically(self):
        """Same scheduler state => same continuation."""
        handle = build_abd_system(n=3, f=1, value_bits=4)
        op = handle.world.invoke_write(handle.writer_ids[0], 5)
        clone = handle.world.fork()
        handle.world.run_op_to_completion(op)
        clone_op = clone.operations[op.op_id]
        clone.run_until(lambda w: clone_op.is_complete)
        assert forks_agree(handle.world, clone)

    def test_cas_fork_independence(self):
        handle = build_cas_system(n=5, f=1, value_bits=12)
        handle.world.invoke_write(handle.writer_ids[0], 100)
        for _ in range(3):
            handle.world.step()
        clone = handle.world.fork()
        before = world_digest(handle.world)
        for _ in range(5):
            clone.step()
        assert world_digest(handle.world) == before


class TestCompositeDigest:
    def test_excludes_writer(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        writer = handle.writer_ids[0]
        handle.world.invoke_write(writer, 5)
        d_full = world_digest(handle.world)
        d_partial = composite_digest(handle.world, (writer,))
        # the writer's in-flight messages are excluded
        assert d_full != d_partial
        flat = str(d_partial)
        assert writer not in flat

    def test_equal_worlds_equal_composites(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(5)
        clone = handle.world.fork()
        assert composite_digest(handle.world, ("w000",)) == composite_digest(
            clone, ("w000",)
        )
