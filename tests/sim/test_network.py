"""Tests for the World step engine, using tiny toy protocols."""

import pytest

from repro.errors import (
    OperationIncompleteError,
    ProcessFailedError,
    SimulationError,
    UnknownProcessError,
)
from repro.sim.events import Message
from repro.sim.network import World
from repro.sim.process import ClientProcess, ProcessContext, ServerProcess
from repro.sim.scheduler import ChannelFilter


class EchoServer(ServerProcess):
    """Replies to every 'ping' with a 'pong' carrying the same payload."""

    def __init__(self, pid):
        super().__init__(pid)
        self.pings_seen = 0

    def on_message(self, ctx, src, message):
        if message.kind == "ping":
            self.pings_seen += 1
            ctx.send(src, Message.make("pong", n=message.get("n")))

    def state_digest(self):
        return (self.pings_seen,)


class PingClient(ClientProcess):
    """'Writes' by pinging every server and waiting for all pongs."""

    def __init__(self, pid, server_ids):
        super().__init__(pid)
        self.server_ids = server_ids
        self.pongs = 0

    def start_write(self, ctx, op_id, value):
        self.pongs = 0
        for sid in self.server_ids:
            ctx.send(sid, Message.make("ping", n=value))

    def start_read(self, ctx, op_id):
        raise SimulationError("ping client cannot read")

    def on_message(self, ctx, src, message):
        if message.kind == "pong" and self.pending_op_id is not None:
            self.pongs += 1
            if self.pongs == len(self.server_ids):
                self.finish(ctx)

    def state_digest(self):
        return (self.pongs, self.pending_op_id)


def make_world(num_servers=3):
    w = World()
    servers = [w.add_process(EchoServer(f"s{i}")) for i in range(num_servers)]
    client = w.add_process(PingClient("c0", tuple(s.pid for s in servers)))
    return w, servers, client


class TestTopology:
    def test_duplicate_pid_rejected(self):
        w = World()
        w.add_process(EchoServer("s0"))
        with pytest.raises(SimulationError):
            w.add_process(EchoServer("s0"))

    def test_unknown_process(self):
        w = World()
        with pytest.raises(UnknownProcessError):
            w.process("ghost")

    def test_unknown_channel_endpoint(self):
        w = World()
        w.add_process(EchoServer("s0"))
        with pytest.raises(UnknownProcessError):
            w.channel("s0", "ghost")

    def test_servers_and_clients_listing(self):
        w, servers, client = make_world()
        assert [s.pid for s in w.servers()] == ["s0", "s1", "s2"]
        assert [c.pid for c in w.clients()] == ["c0"]


class TestStepping:
    def test_operation_runs_to_completion(self):
        w, servers, client = make_world()
        op = w.invoke_write("c0", 5)
        w.run_op_to_completion(op)
        assert op.is_complete
        assert all(s.pings_seen == 1 for s in servers)

    def test_step_returns_none_when_quiescent(self):
        w, _, _ = make_world()
        assert w.step() is None

    def test_trace_records_actions(self):
        w, _, _ = make_world()
        op = w.invoke_write("c0", 5)
        w.run_op_to_completion(op)
        kinds = {a.kind for a in w.trace}
        assert kinds == {"invoke", "deliver"}
        # 3 pings + 3 pongs + 1 invoke
        assert len(w.trace) == 7

    def test_points_advance_one_per_action(self):
        w, _, _ = make_world()
        op = w.invoke_write("c0", 5)
        before = w.step_count
        w.step()
        assert w.step_count == before + 1

    def test_filter_blocks_channels(self):
        w, servers, _ = make_world()
        w.invoke_write("c0", 5)
        freeze = ChannelFilter.freeze_process("c0")
        # all enabled channels touch the client, so nothing can step
        assert w.step(freeze) is None

    def test_run_until_quiesce_raises(self):
        w, _, _ = make_world()
        with pytest.raises(OperationIncompleteError):
            w.run_until(lambda world: False, max_steps=10)

    def test_run_until_max_steps(self):
        w, _, _ = make_world()
        w.invoke_write("c0", 5)
        with pytest.raises(OperationIncompleteError):
            w.run_until(lambda world: False, max_steps=2)

    def test_deliver_all_drains(self):
        w, servers, _ = make_world()
        w.invoke_write("c0", 5)
        delivered = w.deliver_all()
        assert delivered == 6  # 3 pings then 3 pongs
        assert not w.enabled_channels()

    def test_deliver_empty_channel_rejected(self):
        w, _, _ = make_world()
        w.channel("s0", "s1")  # create empty
        with pytest.raises(SimulationError):
            w.deliver("s0", "s1")


class TestCrash:
    def test_crashed_server_drops_messages(self):
        w, servers, client = make_world()
        w.crash("s0")
        op = w.invoke_write("c0", 5)
        # client never completes: only 2 of 3 pongs arrive
        with pytest.raises(OperationIncompleteError):
            w.run_op_to_completion(op, max_steps=100)
        assert servers[0].pings_seen == 0
        drops = [a for a in w.trace if a.kind == "drop"]
        assert len(drops) == 1

    def test_crashed_client_cannot_invoke(self):
        w, _, _ = make_world()
        w.crash("c0")
        with pytest.raises(ProcessFailedError):
            w.invoke_write("c0", 5)

    def test_crashed_process_cannot_send(self):
        w, _, _ = make_world()
        w.crash("s0")
        with pytest.raises(ProcessFailedError):
            w.enqueue_message("s0", "c0", Message.make("pong"))

    def test_in_flight_messages_from_crashed_still_deliver(self):
        w, servers, client = make_world()
        w.invoke_write("c0", 5)
        w.deliver("c0", "s0")  # s0 replies: pong in flight
        w.crash("s0")
        w.deliver("s0", "c0")  # pong still deliverable
        assert client.pongs == 1


class TestOperations:
    def test_two_invocations_same_client_rejected(self):
        w, _, _ = make_world()
        w.invoke_write("c0", 1)
        with pytest.raises(SimulationError):
            w.invoke_write("c0", 2)

    def test_sequential_ops_allowed(self):
        w, _, _ = make_world()
        op1 = w.invoke_write("c0", 1)
        w.run_op_to_completion(op1)
        op2 = w.invoke_write("c0", 2)
        w.run_op_to_completion(op2)
        assert op1.op_id != op2.op_id

    def test_invoke_on_server_rejected(self):
        w, _, _ = make_world()
        with pytest.raises(SimulationError):
            w.invoke_write("s0", 1)

    def test_pending_operations(self):
        w, _, _ = make_world()
        op = w.invoke_write("c0", 1)
        assert w.pending_operations() == [op]
        w.run_op_to_completion(op)
        assert w.pending_operations() == []

    def test_double_completion_rejected(self):
        w, _, _ = make_world()
        op = w.invoke_write("c0", 1)
        w.run_op_to_completion(op)
        with pytest.raises(SimulationError):
            w.complete_operation("c0", op.op_id, None)


class TestStateVector:
    def test_server_state_vector_all(self):
        w, servers, _ = make_world()
        vec = w.server_state_vector()
        assert vec == ((0,), (0,), (0,))

    def test_server_state_vector_subset(self):
        w, servers, _ = make_world()
        servers[1].pings_seen = 5
        vec = w.server_state_vector(["s1", "s2"])
        assert vec == ((5,), (0,))
