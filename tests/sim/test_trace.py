"""Tests for execution traces."""

from repro.registers.abd import build_abd_system
from repro.sim.events import OperationRecord
from repro.sim.trace import ExecutionTrace


def make_trace(ops):
    return ExecutionTrace(actions=[], operations=ops)


def op(op_id, kind, invoke, response=None, client="c", value=1):
    return OperationRecord(
        op_id=op_id,
        client=client,
        kind=kind,
        value=value,
        invoke_step=invoke,
        response_step=response,
    )


class TestActiveWrites:
    def test_no_writes(self):
        t = make_trace([op(0, "read", 1, 5)])
        assert t.max_active_writes() == 0

    def test_sequential_writes(self):
        t = make_trace([op(0, "write", 1, 3), op(1, "write", 5, 8)])
        assert t.max_active_writes() == 1

    def test_overlapping_writes(self):
        t = make_trace(
            [op(0, "write", 1, 10), op(1, "write", 2, 9), op(2, "write", 3, 8)]
        )
        assert t.max_active_writes() == 3

    def test_active_at_point(self):
        t = make_trace([op(0, "write", 2, 6)])
        assert t.active_writes_at(1) == 0
        assert t.active_writes_at(2) == 1
        assert t.active_writes_at(5) == 1
        assert t.active_writes_at(6) == 0

    def test_incomplete_write_stays_active(self):
        t = make_trace([op(0, "write", 2, None)])
        assert t.active_writes_at(1000) == 1
        assert t.max_active_writes() == 1


class TestSweepCache:
    """The event sweep behind active_writes_at / max_active_writes."""

    def test_matches_brute_force(self):
        ops = [
            op(0, "write", 1, 10),
            op(1, "write", 2, 9),
            op(2, "write", 3, 8),
            op(3, "write", 12, None),
            op(4, "read", 0, 20),
        ]
        t = make_trace(ops)
        writes = [o for o in ops if o.kind == "write"]
        for step in range(0, 15):
            expected = sum(
                1
                for w in writes
                if w.invoke_step <= step
                and (w.response_step is None or w.response_step > step)
            )
            assert t.active_writes_at(step) == expected, f"step {step}"
        assert t.max_active_writes() == 3

    def test_cache_is_reused_for_unchanged_trace(self):
        t = make_trace([op(0, "write", 1, 5)])
        t.active_writes_at(3)
        first = t._sweep_cache
        t.max_active_writes()
        t.active_writes_at(4)
        assert t._sweep_cache is first

    def test_cache_invalidated_when_shared_record_completes(self):
        # capture() shares mutable OperationRecords with the live World:
        # a write completing after capture must be reflected on re-query.
        pending = op(0, "write", 2, None)
        t = make_trace([pending])
        assert t.active_writes_at(100) == 1
        pending.response_step = 50
        assert t.active_writes_at(100) == 0
        assert t.max_active_writes() == 1

    def test_cache_invalidated_when_operation_appended(self):
        t = make_trace([op(0, "write", 1, 3)])
        assert t.max_active_writes() == 1
        t.operations.append(op(1, "write", 2, None))
        assert t.max_active_writes() == 2

    def test_response_at_invoke_step_not_double_counted(self):
        # a write responding at P is no longer active at P, even when
        # another write is invoked at exactly P.
        t = make_trace([op(0, "write", 1, 5), op(1, "write", 5, 9)])
        assert t.active_writes_at(5) == 1
        assert t.max_active_writes() == 1


class TestCaptureAndQueries:
    def test_capture_from_world(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(3)
        handle.read()
        trace = ExecutionTrace.capture(handle.world)
        assert len(trace.operations) == 2
        assert len(trace.writes()) == 1
        assert len(trace.reads()) == 1
        assert trace.message_count() > 0
        assert trace.last_step() == handle.world.step_count

    def test_completed_operations(self):
        t = make_trace([op(0, "write", 1, 5), op(1, "write", 6, None)])
        assert [o.op_id for o in t.completed_operations()] == [0]

    def test_operation_by_id(self):
        t = make_trace([op(0, "write", 1, 5)])
        assert t.operation_by_id(0).op_id == 0
        assert t.operation_by_id(9) is None

    def test_empty_trace(self):
        t = make_trace([])
        assert t.last_step() == 0
        assert t.message_count() == 0
