"""Tests for execution traces."""

from repro.registers.abd import build_abd_system
from repro.sim.events import OperationRecord
from repro.sim.trace import ExecutionTrace


def make_trace(ops):
    return ExecutionTrace(actions=[], operations=ops)


def op(op_id, kind, invoke, response=None, client="c", value=1):
    return OperationRecord(
        op_id=op_id,
        client=client,
        kind=kind,
        value=value,
        invoke_step=invoke,
        response_step=response,
    )


class TestActiveWrites:
    def test_no_writes(self):
        t = make_trace([op(0, "read", 1, 5)])
        assert t.max_active_writes() == 0

    def test_sequential_writes(self):
        t = make_trace([op(0, "write", 1, 3), op(1, "write", 5, 8)])
        assert t.max_active_writes() == 1

    def test_overlapping_writes(self):
        t = make_trace(
            [op(0, "write", 1, 10), op(1, "write", 2, 9), op(2, "write", 3, 8)]
        )
        assert t.max_active_writes() == 3

    def test_active_at_point(self):
        t = make_trace([op(0, "write", 2, 6)])
        assert t.active_writes_at(1) == 0
        assert t.active_writes_at(2) == 1
        assert t.active_writes_at(5) == 1
        assert t.active_writes_at(6) == 0

    def test_incomplete_write_stays_active(self):
        t = make_trace([op(0, "write", 2, None)])
        assert t.active_writes_at(1000) == 1
        assert t.max_active_writes() == 1


class TestCaptureAndQueries:
    def test_capture_from_world(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.write(3)
        handle.read()
        trace = ExecutionTrace.capture(handle.world)
        assert len(trace.operations) == 2
        assert len(trace.writes()) == 1
        assert len(trace.reads()) == 1
        assert trace.message_count() > 0
        assert trace.last_step() == handle.world.step_count

    def test_completed_operations(self):
        t = make_trace([op(0, "write", 1, 5), op(1, "write", 6, None)])
        assert [o.op_id for o in t.completed_operations()] == [0]

    def test_operation_by_id(self):
        t = make_trace([op(0, "write", 1, 5)])
        assert t.operation_by_id(0).op_id == 0
        assert t.operation_by_id(9) is None

    def test_empty_trace(self):
        t = make_trace([])
        assert t.last_step() == 0
        assert t.message_count() == 0
