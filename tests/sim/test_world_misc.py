"""Smaller World behaviours not covered elsewhere."""

from repro.registers.abd import build_abd_system
from repro.sim.network import World


class TestTraceToggle:
    def test_record_trace_off_skips_actions(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.world.record_trace = False
        handle.write(5)
        assert handle.world.trace == []
        # step counting still advances: points exist without the log
        assert handle.world.step_count > 0

    def test_operations_recorded_regardless(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.world.record_trace = False
        handle.write(5)
        assert len(handle.world.operations) == 1


class TestRepr:
    def test_world_repr_mentions_counts(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        handle.world.invoke_write(handle.writer_ids[0], 1)
        text = repr(handle.world)
        assert "processes=5" in text
        assert "in_flight=3" in text

    def test_empty_world(self):
        assert "processes=0" in repr(World())


class TestChannelLazyCreation:
    def test_channels_created_on_first_send(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        assert len(handle.world.channels) == 0
        handle.world.invoke_write(handle.writer_ids[0], 1)
        # writer -> each server
        assert len(handle.world.channels) == 3

    def test_channel_accessor_creates_empty(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        ch = handle.world.channel("s000", "s001")
        assert len(ch) == 0
        assert ("s000", "s001") in handle.world.channels


class TestForkSchedulerState:
    def test_round_robin_cursor_copied(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        w = handle.world
        w.invoke_write(handle.writer_ids[0], 1)
        w.step()
        clone = w.fork()
        # both continue identically from the same scheduler cursor
        a = w.step()
        b = clone.step()
        assert (a.src, a.dst) == (b.src, b.dst)
