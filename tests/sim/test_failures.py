"""Tests for failure patterns."""

import pytest

from repro.errors import ConfigurationError
from repro.registers.abd import build_abd_system
from repro.sim.failures import (
    FailurePattern,
    apply_timed_failures,
    fail_initial,
    surviving_servers,
)


class TestFailInitial:
    def test_crashes_named(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        fail_initial(handle.world, ["s003", "s004"])
        assert surviving_servers(handle.world) == ["s000", "s001", "s002"]

    def test_crash_recorded_in_trace(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        fail_initial(handle.world, ["s000"])
        assert any(a.kind == "crash" and a.src == "s000" for a in handle.world.trace)


class TestFailurePattern:
    def test_validate_respects_budget(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        pattern = FailurePattern(initial=("s000", "s001", "s002"))
        with pytest.raises(ConfigurationError):
            pattern.validate(handle.world, f=2)

    def test_validate_unknown_pid(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        pattern = FailurePattern(initial=("ghost",))
        with pytest.raises(Exception):
            pattern.validate(handle.world, f=2)

    def test_client_failures_unbudgeted(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        pattern = FailurePattern(initial=("w000", "s000", "s001"))
        pattern.validate(handle.world, f=2)  # 2 servers + 1 client: fine

    def test_apply_initial(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        FailurePattern(initial=("s000",)).apply_initial(handle.world)
        assert handle.world.process("s000").failed

    def test_timed_failures_fire_once(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        pattern = FailurePattern(timed=(("s000", 0),))
        applied = set()
        assert apply_timed_failures(handle.world, pattern, applied) == 1
        assert apply_timed_failures(handle.world, pattern, applied) == 0
        assert handle.world.process("s000").failed

    def test_timed_failures_wait_for_step(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        pattern = FailurePattern(timed=(("s000", 10),))
        applied = set()
        assert apply_timed_failures(handle.world, pattern, applied) == 0
        handle.write(3)  # advances steps well past 10
        assert apply_timed_failures(handle.world, pattern, applied) == 1


class TestLivenessUnderFailures:
    def test_abd_survives_f_failures(self):
        handle = build_abd_system(n=5, f=2, value_bits=4)
        fail_initial(handle.world, ["s000", "s001"])
        handle.write(9)
        assert handle.read().value == 9

    def test_abd_blocks_beyond_f_failures(self):
        from repro.errors import OperationIncompleteError

        handle = build_abd_system(n=5, f=2, value_bits=4)
        fail_initial(handle.world, ["s000", "s001", "s002"])
        with pytest.raises(OperationIncompleteError):
            handle.write(9, max_steps=1000)
