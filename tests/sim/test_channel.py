"""Tests for FIFO channels."""

from repro.sim.channel import Channel
from repro.sim.events import Message


class TestChannel:
    def test_fifo_order(self):
        ch = Channel("a", "b")
        for i in range(5):
            ch.enqueue(Message.make("m", i=i))
        assert [ch.dequeue().get("i") for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_nondestructive(self):
        ch = Channel("a", "b")
        ch.enqueue(Message.make("m", i=0))
        assert ch.peek().get("i") == 0
        assert len(ch) == 1

    def test_peek_empty(self):
        assert Channel("a", "b").peek() is None

    def test_bool_and_len(self):
        ch = Channel("a", "b")
        assert not ch
        ch.enqueue(Message.make("m"))
        assert ch
        assert len(ch) == 1

    def test_state_digest_order_sensitive(self):
        ch1 = Channel("a", "b")
        ch2 = Channel("a", "b")
        ch1.enqueue(Message.make("m", i=0))
        ch1.enqueue(Message.make("m", i=1))
        ch2.enqueue(Message.make("m", i=1))
        ch2.enqueue(Message.make("m", i=0))
        assert ch1.state_digest() != ch2.state_digest()

    def test_state_digest_hashable(self):
        ch = Channel("a", "b")
        ch.enqueue(Message.make("m", i=0))
        hash(ch.state_digest())
