"""Tests for message and record types."""

from repro.sim.events import ActionRecord, Message, OperationRecord


class TestMessage:
    def test_make_and_get(self):
        m = Message.make("put", tag=(1, "w"), value=5)
        assert m.kind == "put"
        assert m.get("tag") == (1, "w")
        assert m.get("value") == 5

    def test_get_default(self):
        m = Message.make("ping")
        assert m.get("missing", 7) == 7
        assert m.get("missing") is None

    def test_as_dict(self):
        m = Message.make("x", a=1, b=2)
        assert m.as_dict() == {"a": 1, "b": 2}

    def test_hashable_and_equal(self):
        a = Message.make("x", a=1)
        b = Message.make("x", a=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_body_order_canonical(self):
        assert Message.make("x", b=2, a=1) == Message.make("x", a=1, b=2)

    def test_repr(self):
        assert "put" in repr(Message.make("put", v=1))


class TestOperationRecord:
    def test_incomplete_by_default(self):
        op = OperationRecord(0, "c", "write", 5)
        assert not op.is_complete

    def test_complete(self):
        op = OperationRecord(0, "c", "write", 5, invoke_step=1, response_step=9)
        assert op.is_complete

    def test_precedes(self):
        a = OperationRecord(0, "c", "write", 1, invoke_step=1, response_step=3)
        b = OperationRecord(1, "c", "write", 2, invoke_step=5, response_step=7)
        assert a.precedes(b)
        assert not b.precedes(a)

    def test_incomplete_never_precedes(self):
        a = OperationRecord(0, "c", "write", 1, invoke_step=1)
        b = OperationRecord(1, "c", "write", 2, invoke_step=5, response_step=7)
        assert not a.precedes(b)

    def test_overlaps_concurrent(self):
        a = OperationRecord(0, "c", "write", 1, invoke_step=1, response_step=6)
        b = OperationRecord(1, "d", "write", 2, invoke_step=5, response_step=9)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_overlaps_disjoint(self):
        a = OperationRecord(0, "c", "write", 1, invoke_step=1, response_step=3)
        b = OperationRecord(1, "d", "write", 2, invoke_step=5, response_step=9)
        assert not a.overlaps(b)

    def test_incomplete_overlaps_everything_after(self):
        a = OperationRecord(0, "c", "write", 1, invoke_step=1)
        b = OperationRecord(1, "d", "write", 2, invoke_step=100, response_step=110)
        assert a.overlaps(b)


class TestActionRecord:
    def test_fields(self):
        r = ActionRecord(3, "deliver", "a", "b", "put")
        assert (r.step, r.kind, r.src, r.dst, r.info) == (3, "deliver", "a", "b", "put")
