"""Tests for schedulers and channel filters."""

import pytest

from repro.errors import SchedulerExhaustedError
from repro.sim.scheduler import (
    ChannelFilter,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)


class TestChannelFilter:
    def test_all_channels(self):
        f = ChannelFilter.all_channels()
        assert f.allows("a", "b")

    def test_freeze_process(self):
        f = ChannelFilter.freeze_process("w")
        assert not f.allows("w", "s")
        assert not f.allows("s", "w")
        assert f.allows("s", "r")

    def test_freeze_processes(self):
        f = ChannelFilter.freeze_processes(["w1", "w2"])
        assert not f.allows("w1", "s")
        assert not f.allows("s", "w2")
        assert f.allows("s", "r")

    def test_only_between(self):
        f = ChannelFilter.only_between(["s1", "s2"])
        assert f.allows("s1", "s2")
        assert not f.allows("s1", "r")
        assert not f.allows("r", "s1")

    def test_intersect(self):
        f = ChannelFilter.only_between(["s1", "s2", "w"]).intersect(
            ChannelFilter.freeze_process("w")
        )
        assert f.allows("s1", "s2")
        assert not f.allows("s1", "w")

    def test_repr_mentions_description(self):
        assert "freeze" in repr(ChannelFilter.freeze_process("w"))


class TestRoundRobin:
    def test_cycles_fairly(self):
        sched = RoundRobinScheduler()
        enabled = [("a", "b"), ("c", "d"), ("e", "f")]
        picks = [sched.select(None, enabled) for _ in range(6)]
        assert picks == sorted(enabled) * 2

    def test_handles_shrinking_enabled_set(self):
        sched = RoundRobinScheduler()
        sched.select(None, [("a", "b"), ("c", "d")])
        pick = sched.select(None, [("a", "b")])
        assert pick == ("a", "b")

    def test_every_channel_eventually_selected(self):
        sched = RoundRobinScheduler()
        enabled = [(str(i), "x") for i in range(7)]
        picks = {sched.select(None, enabled) for _ in range(7)}
        assert picks == set(enabled)


class TestRandom:
    def test_deterministic_for_seed(self):
        enabled = [(str(i), "x") for i in range(5)]
        a = [RandomScheduler(3).select(None, enabled) for _ in range(1)]
        b = [RandomScheduler(3).select(None, enabled) for _ in range(1)]
        assert a == b

    def test_selection_is_enabled(self):
        sched = RandomScheduler(0)
        enabled = [("a", "b"), ("c", "d")]
        for _ in range(20):
            assert sched.select(None, enabled) in enabled


class TestScripted:
    def test_follows_script(self):
        script = [("a", "b"), ("c", "d")]
        sched = ScriptedScheduler(script)
        assert sched.select(None, script) == ("a", "b")
        assert sched.select(None, script) == ("c", "d")

    def test_exhaustion(self):
        sched = ScriptedScheduler([])
        with pytest.raises(SchedulerExhaustedError):
            sched.select(None, [("a", "b")])

    def test_disabled_scripted_channel(self):
        sched = ScriptedScheduler([("a", "b")])
        with pytest.raises(SchedulerExhaustedError):
            sched.select(None, [("c", "d")])
