"""Tests for schedulers and channel filters."""

import pytest

from repro.errors import SchedulerExhaustedError
from repro.sim.scheduler import (
    ChannelFilter,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)


class TestChannelFilter:
    def test_all_channels(self):
        f = ChannelFilter.all_channels()
        assert f.allows("a", "b")

    def test_freeze_process(self):
        f = ChannelFilter.freeze_process("w")
        assert not f.allows("w", "s")
        assert not f.allows("s", "w")
        assert f.allows("s", "r")

    def test_freeze_processes(self):
        f = ChannelFilter.freeze_processes(["w1", "w2"])
        assert not f.allows("w1", "s")
        assert not f.allows("s", "w2")
        assert f.allows("s", "r")

    def test_only_between(self):
        f = ChannelFilter.only_between(["s1", "s2"])
        assert f.allows("s1", "s2")
        assert not f.allows("s1", "r")
        assert not f.allows("r", "s1")

    def test_intersect(self):
        f = ChannelFilter.only_between(["s1", "s2", "w"]).intersect(
            ChannelFilter.freeze_process("w")
        )
        assert f.allows("s1", "s2")
        assert not f.allows("s1", "w")

    def test_repr_mentions_description(self):
        assert "freeze" in repr(ChannelFilter.freeze_process("w"))


class TestRoundRobin:
    def test_cycles_fairly(self):
        sched = RoundRobinScheduler()
        enabled = [("a", "b"), ("c", "d"), ("e", "f")]
        picks = [sched.select(None, enabled) for _ in range(6)]
        assert picks == sorted(enabled) * 2

    def test_handles_shrinking_enabled_set(self):
        sched = RoundRobinScheduler()
        sched.select(None, [("a", "b"), ("c", "d")])
        pick = sched.select(None, [("a", "b")])
        assert pick == ("a", "b")

    def test_every_channel_eventually_selected(self):
        sched = RoundRobinScheduler()
        enabled = [(str(i), "x") for i in range(7)]
        picks = {sched.select(None, enabled) for _ in range(7)}
        assert picks == set(enabled)

    def test_no_starvation_under_churn(self):
        # Regression: indexing a cursor into the freshly sorted enabled
        # list starved channels when membership changed between calls —
        # under this periodic pattern the last-sorting channel was picked
        # only 5 times in 60 despite being enabled in every round.  The
        # persistent cyclic order must serve it once per cycle.
        pattern = [
            [("a", "x"), ("b", "x"), ("m", "x"), ("z", "x")],
            [("a", "x"), ("b", "x"), ("m", "x"), ("z", "x")],
            [("m", "x"), ("z", "x")],
            [("b", "x"), ("m", "x"), ("z", "x")],
        ]
        sched = RoundRobinScheduler()
        picks = [sched.select(None, pattern[i % 4]) for i in range(60)]
        count = picks.count(("z", "x"))
        # Four distinct keys ever seen, so an always-enabled key is
        # selected at least once every four calls.
        assert count >= 15, f"z starved: picked {count}/60"

    def test_gap_bound_for_always_enabled_channel(self):
        # Between two selections of an always-enabled key, the cursor
        # sweeps the whole order at most once: gap <= distinct keys seen.
        import random

        rng = random.Random(9)
        universe = [(name, "x") for name in "abcdefg"]
        steady = ("m", "x")
        sched = RoundRobinScheduler()
        last_pick = -1
        for step in range(200):
            enabled = [k for k in universe if rng.random() < 0.5] + [steady]
            if sched.select(None, sorted(enabled)) == steady:
                last_pick = step
            assert step - last_pick <= len(universe) + 1


class TestRandom:
    def test_deterministic_for_seed(self):
        enabled = [(str(i), "x") for i in range(5)]
        a = [RandomScheduler(3).select(None, enabled) for _ in range(1)]
        b = [RandomScheduler(3).select(None, enabled) for _ in range(1)]
        assert a == b

    def test_selection_is_enabled(self):
        sched = RandomScheduler(0)
        enabled = [("a", "b"), ("c", "d")]
        for _ in range(20):
            assert sched.select(None, enabled) in enabled


class TestScripted:
    def test_follows_script(self):
        script = [("a", "b"), ("c", "d")]
        sched = ScriptedScheduler(script)
        assert sched.select(None, script) == ("a", "b")
        assert sched.select(None, script) == ("c", "d")

    def test_exhaustion(self):
        sched = ScriptedScheduler([])
        with pytest.raises(SchedulerExhaustedError):
            sched.select(None, [("a", "b")])

    def test_disabled_scripted_channel(self):
        sched = ScriptedScheduler([("a", "b")])
        with pytest.raises(SchedulerExhaustedError):
            sched.select(None, [("c", "d")])
