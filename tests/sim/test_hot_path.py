"""Hot-path bookkeeping: channel index, topology caches, pending index.

These guard the incremental structures the fork/step overhaul
introduced: the non-empty-channel index (kept in sync by channel
transition callbacks, even for direct enqueues), the cached
``servers()``/``clients()`` topology views, the incomplete-operation
index behind ``pending_operations()``, and the ``run_until`` step
budget (which used to permit ``max_steps + 1`` deliveries).
"""

import pytest

from repro.errors import OperationIncompleteError
from repro.registers.abd import build_abd_system
from repro.sim.events import Message
from repro.sim.network import World
from repro.sim.process import ClientProcess, ServerProcess


def _rescan(world: World):
    """Ground truth: scan every channel object."""
    return sorted(k for k, ch in world.channels.items() if len(ch) > 0)


class TestChannelIndex:
    def test_index_tracks_enqueue_and_dequeue(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 3)
        assert world.undelivered_channels() == _rescan(world)
        while world.enabled_channels():
            world.step()
            assert world.undelivered_channels() == _rescan(world)
        assert world.undelivered_channels() == []

    def test_index_sees_direct_channel_enqueues(self):
        """Tests enqueue on channel objects directly; the index follows."""
        world = World()
        world.add_process(ServerProcess("s0"))
        world.add_process(ServerProcess("s1"))
        channel = world.channel("s0", "s1")
        assert world.enabled_channels() == []
        channel.enqueue(Message.make("ping"))
        assert world.enabled_channels() == [("s0", "s1")]
        channel.dequeue()
        assert world.enabled_channels() == []

    def test_forked_world_has_independent_index(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 3)
        clone = world.fork()
        clone.deliver_all()
        assert clone.undelivered_channels() == []
        assert world.undelivered_channels() == _rescan(world) != []


class TestTopologyCaches:
    def test_cached_views_match_and_invalidate(self):
        world = World()
        world.add_process(ServerProcess("s0"))
        world.add_process(ClientProcess("c0"))
        assert [p.pid for p in world.servers()] == ["s0"]
        assert [p.pid for p in world.clients()] == ["c0"]
        world.add_process(ServerProcess("s1"))
        assert [p.pid for p in world.servers()] == ["s0", "s1"]

    def test_cached_list_is_a_copy(self):
        world = World()
        world.add_process(ServerProcess("s0"))
        view = world.servers()
        view.clear()
        assert [p.pid for p in world.servers()] == ["s0"]


class TestPendingIndex:
    def test_pending_tracks_completion(self):
        handle = build_abd_system(n=3, f=1, value_bits=4, num_readers=2)
        world = handle.world
        write = world.invoke_write(handle.writer_ids[0], 3)
        read = world.invoke_read(handle.reader_ids[0])
        assert {op.op_id for op in world.pending_operations()} == {0, 1}
        world.run_op_to_completion(write)
        # Fair stepping may have completed the read too; the index must
        # agree with a linear scan either way.
        assert world.pending_operations() == [
            op for op in world.operations if not op.is_complete
        ]
        if not read.is_complete:
            world.run_op_to_completion(read)
        assert world.pending_operations() == []

    def test_pending_matches_linear_scan(self):
        handle = build_abd_system(
            n=3, f=1, value_bits=4, num_writers=2, num_readers=2
        )
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 1)
        world.invoke_read(handle.reader_ids[0])
        for _ in range(10):
            if not world.enabled_channels():
                break
            world.step()
        expected = [op for op in world.operations if not op.is_complete]
        assert world.pending_operations() == expected


class TestRunUntilBudget:
    def test_run_until_executes_at_most_max_steps(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 3)
        before = world.step_count
        with pytest.raises(OperationIncompleteError):
            world.run_until(lambda w: False, max_steps=2)
        assert world.step_count - before == 2

    def test_run_until_zero_budget_takes_no_steps(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        world.invoke_write(handle.writer_ids[0], 3)
        before = world.step_count
        with pytest.raises(OperationIncompleteError):
            world.run_until(lambda w: False, max_steps=0)
        assert world.step_count == before

    def test_run_until_stops_immediately_when_predicate_holds(self):
        handle = build_abd_system(n=3, f=1, value_bits=4)
        world = handle.world
        assert world.run_until(lambda w: True, max_steps=0) == 0
