"""Tier-2 perf-regression guard over the core hot-path speedups.

Reruns the core benchmark and fails if any speedup factor (fork,
enabled-channel query, exploration, checker) fell more than 30% below
the committed ``benchmarks/results/BENCH_core.json`` baseline.  Factors
are same-machine before/after ratios, so the guard is robust to host
speed while still collapsing if an optimisation silently degrades to
its legacy path.  Marked ``tier2`` (takes ~20s of wall clock): excluded
from the tier-1 run, exercised by ``make test`` and ``make perf-guard``.
"""

import pytest

from benchmarks.bench_core import run_core_bench
from benchmarks.perf_guard import compare_records, load_baseline

pytestmark = pytest.mark.tier2


def test_core_speedup_factors_hold_vs_committed_baseline():
    baseline = load_baseline()
    fresh = run_core_bench()
    failures = compare_records(baseline, fresh)
    assert not failures, "; ".join(failures)
