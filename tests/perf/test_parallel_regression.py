"""Tier-2 perf-regression guard over the parallel engine.

Reruns the realistic campaign workload of
``benchmarks.bench_parallel.run_parallel_bench`` and fails if any
parallel gate breaks: byte-identity across job counts and chunk sizes,
zero simulator runs on a warm cache, the dispatch and engine speedup
floors (persistent+chunked vs the retired spawn-per-call engine — a
machine-independent before/after ratio), or the CPU-count-tiered
serial-vs-parallel speedup.  On failure the assertion message carries
the full jobs-scaling table, so a CI log alone is enough to diagnose.
Marked ``tier2`` (reruns the campaign several times): excluded from
tier-1, exercised by ``make test`` and ``make perf-guard``.
"""

import pytest

from benchmarks.bench_parallel import run_parallel_bench
from benchmarks.perf_guard import jobs_scaling_table, parallel_failures

pytestmark = pytest.mark.tier2


def test_parallel_engine_gates_hold():
    record = run_parallel_bench()
    failures = parallel_failures(record)
    assert not failures, (
        "; ".join(failures) + "\n" + jobs_scaling_table(record)
    )
