"""Tier-2 resilience gate: kill a live campaign, resume it, compare bytes.

Runs the same end-to-end smoke as ``make resume-smoke`` / the perf
guard: a reference ``repro chaos`` campaign, a second campaign SIGKILLed
mid-flight, and a ``--resume`` continuation that must load completed
runs from the journal and reproduce the reference JSON byte-identically.
Marked tier-2 because it spawns real CLI subprocesses and waits on real
wall-clock kills.
"""

import pytest

from benchmarks.resume_smoke import run_resume_smoke
from benchmarks.perf_guard import resilience_failures

pytestmark = pytest.mark.tier2


def test_killed_campaign_resumes_byte_identical():
    record = run_resume_smoke(verbose=False)
    failures = resilience_failures(record)
    assert not failures, f"{failures}\ncounters: {record}"
    assert record["killed_midway"]
    assert record["loaded"] > 0
    assert record["byte_identical"]
