"""Tier-2 budget check: tracing must be free when disabled.

Runs only the ``tracing`` section of the core benchmark and asserts the
disabled-tracing overhead on the fork and exploration paths stays under
the 3% perf-guard budget — the falsy ``NO_OP`` hook guards are the only
cost an uninstrumented run may pay.  Marked ``tier2`` (several seconds
of timed wall clock); exercised by ``make trace-smoke`` and folded into
``make perf-guard`` via :func:`benchmarks.perf_guard.compare_records`.
"""

import pytest

from benchmarks.bench_core import bench_tracing as run_tracing_bench
from benchmarks.perf_guard import tracing_failures

pytestmark = pytest.mark.tier2


def test_tracing_disabled_overhead_under_budget():
    section = run_tracing_bench()
    failures = tracing_failures({"tracing": section})
    assert not failures, "; ".join(failures)
    # The enabled collector does real work; sanity-check it still forks.
    assert section["fork_traced_per_s"] > 0
